//! The two phases of POLM2 (paper §3.5): profiling and production.

use std::cell::RefCell;
use std::rc::Rc;

use polm2_metrics::{FaultCounters, SimDuration};
use polm2_runtime::{ClassTransformer, Jvm, Program, RuntimeError};
use polm2_snapshot::{CriuDumper, HeapDumper, SnapshotSeries};

use crate::analyzer::{AnalysisOutcome, Analyzer, AnalyzerConfig};
use crate::error::PipelineError;
use crate::faults::{FaultConfig, FaultInjector, FaultyDumper, InjectedFaults};
use crate::instrumenter::{InstrumentationStats, Instrumenter};
use crate::journal::SessionJournal;
use crate::profile::ProfileValidation;
use crate::recorder::Recorder;
use crate::AllocationProfile;

/// When the Recorder asks the Dumper for a snapshot.
///
/// "By default (this is configurable), the Recorder asks for a new memory
/// snapshot at the end of every GC cycle" (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotPolicy {
    /// Take a snapshot after every `every_n_cycles` completed GC cycles.
    pub every_n_cycles: u32,
}

impl Default for SnapshotPolicy {
    fn default() -> Self {
        SnapshotPolicy { every_n_cycles: 1 }
    }
}

/// How the profiling session recovers from Dumper failures.
///
/// A failed capture is retried with exponentially growing backoff (the
/// coordinator waiting out a busy safepoint), charged to the simulated clock
/// so recovery costs real — simulated — time. When the retry budget runs
/// out the snapshot is *skipped and counted*: profiling is best-effort by
/// design, and a missing snapshot only makes objects look shorter-lived
/// (the safe direction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Retries after the first failed capture attempt.
    pub max_snapshot_retries: u32,
    /// Backoff before the first retry; doubles per retry.
    pub retry_backoff: SimDuration,
    /// Abort the session with [`PipelineError::Snapshot`] instead of
    /// skipping when the retry budget is exhausted.
    pub fail_on_snapshot_loss: bool,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_snapshot_retries: 2,
            retry_backoff: SimDuration::from_millis(10),
            fail_on_snapshot_loss: false,
        }
    }
}

/// Everything the profiling phase produced: the analysis, the snapshots it
/// was based on, and the fault/recovery ledger.
#[derive(Debug, Clone)]
pub struct ProfilingReport {
    /// The Analyzer's output (profile, lifetimes, conflicts).
    pub outcome: AnalysisOutcome,
    /// The snapshot series the analysis consumed (including the final one).
    pub snapshots: SnapshotSeries,
    /// Faults absorbed and recovery actions taken during the run.
    pub counters: FaultCounters,
}

/// Drives the profiling phase: Recorder + Dumper + Analyzer.
///
/// The workload driver calls [`after_op`](ProfilingSession::after_op) after
/// every operation; the session drains allocation events into the Recorder
/// and, whenever the policy says a GC cycle has completed, asks the Dumper
/// for an incremental snapshot. [`finish`](ProfilingSession::finish) runs the
/// Analyzer and yields the allocation profile.
pub struct ProfilingSession {
    recorder: Recorder,
    dumper: Box<dyn HeapDumper>,
    snapshots: SnapshotSeries,
    policy: SnapshotPolicy,
    recovery: RecoveryPolicy,
    counters: FaultCounters,
    injector: Option<Rc<RefCell<FaultInjector>>>,
    journal: Option<SessionJournal>,
    cycles_at_last_snapshot: usize,
}

impl std::fmt::Debug for ProfilingSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProfilingSession")
            .field("dumper", &self.dumper.name())
            .field("snapshots", &self.snapshots.len())
            .field("policy", &self.policy)
            .field("recovery", &self.recovery)
            .finish_non_exhaustive()
    }
}

impl ProfilingSession {
    /// Creates a session with the CRIU Dumper.
    pub fn new(policy: SnapshotPolicy) -> Self {
        ProfilingSession::with_dumper(policy, Box::new(CriuDumper::new()))
    }

    /// Creates a session with a custom dumper (ablations, jmap baseline).
    pub fn with_dumper(policy: SnapshotPolicy, dumper: Box<dyn HeapDumper>) -> Self {
        ProfilingSession {
            recorder: Recorder::new(),
            dumper,
            snapshots: SnapshotSeries::new(),
            policy,
            recovery: RecoveryPolicy::default(),
            counters: FaultCounters::new(),
            injector: None,
            journal: None,
            cycles_at_last_snapshot: 0,
        }
    }

    /// Creates a session whose Dumper and Recorder streams suffer the
    /// seeded faults of `faults` (chaos testing). With an inert config this
    /// is behaviorally identical to [`new`](ProfilingSession::new).
    pub fn with_faults(policy: SnapshotPolicy, faults: FaultConfig) -> Self {
        let injector = Rc::new(RefCell::new(FaultInjector::new(faults)));
        let dumper = FaultyDumper::new(Box::new(CriuDumper::new()), Rc::clone(&injector));
        let mut session = ProfilingSession::with_dumper(policy, Box::new(dumper));
        session.injector = Some(injector);
        session
    }

    /// Replaces the recovery policy (chainable).
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// Attaches a durable session journal: from now on every drained
    /// allocation batch, every snapshot, and the final commit record stream
    /// into it, so a crash loses at most the unflushed tail instead of the
    /// whole run. To also inject disk faults, build the journal's writer
    /// over [`FaultyMedia`](crate::FaultyMedia) sharing
    /// [`fault_injector`](ProfilingSession::fault_injector).
    pub fn attach_journal(&mut self, journal: SessionJournal) {
        self.journal = Some(journal);
    }

    /// The attached journal, if any.
    pub fn journal(&self) -> Option<&SessionJournal> {
        self.journal.as_ref()
    }

    /// The session's shared fault injector, when built with
    /// [`with_faults`](ProfilingSession::with_faults) — lets callers hang
    /// more fault surfaces (e.g. [`FaultyMedia`](crate::FaultyMedia)) off
    /// the same seeded stream.
    pub fn fault_injector(&self) -> Option<Rc<RefCell<FaultInjector>>> {
        self.injector.clone()
    }

    /// The Recorder's load-time agent; install it in the profiling JVM.
    pub fn recorder_agent(&self) -> Box<dyn ClassTransformer> {
        self.recorder.agent()
    }

    /// Allocation sites the Recorder instrumented at load time.
    pub fn instrumented_sites(&self) -> u64 {
        self.recorder.instrumented_sites()
    }

    /// Called after each workload operation: drains allocation events and
    /// takes a snapshot if a GC cycle completed since the last one.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Snapshot`] only when the recovery policy demands
    /// aborting on snapshot loss; with the default policy faults are
    /// absorbed into [`fault_counters`](ProfilingSession::fault_counters).
    /// [`PipelineError::Runtime`] wrapping a heap integrity violation when
    /// the memory-corruption chaos arm planted a fault (detection is
    /// synchronous: corrupt memory never reaches a snapshot read).
    pub fn after_op(&mut self, jvm: &mut Jvm) -> Result<(), PipelineError> {
        self.maybe_corrupt_heap(jvm)?;
        self.drain_events(jvm);
        if let Some(journal) = self.journal.as_mut() {
            let records = self.recorder.records();
            journal.sync_records(&records, &mut self.counters, &mut |d| {
                jvm.advance_mutator(d)
            });
        }
        let cycles = jvm.gc_log().cycle_count();
        if cycles >= self.cycles_at_last_snapshot + self.policy.every_n_cycles as usize {
            self.take_snapshot(jvm)?;
        }
        Ok(())
    }

    /// The memory-corruption chaos arm: rolls the injector's heap rates and,
    /// on a plant, runs the integrity verifier *immediately* — synchronous
    /// detection, before any snapshot or hash-column read can trip over the
    /// corrupt bytes. A plant the verifier misses is itself reported as a
    /// violation (`corruption-undetected`), so corrupt memory never survives
    /// this call unnoticed.
    fn maybe_corrupt_heap(&mut self, jvm: &mut Jvm) -> Result<(), PipelineError> {
        let Some(injector) = &self.injector else {
            return Ok(());
        };
        let planted = injector.borrow_mut().maybe_corrupt_heap(jvm.heap_mut());
        let Some(planted) = planted else {
            return Ok(());
        };
        match jvm.heap_mut().verify_integrity() {
            Err(e) => Err(PipelineError::Runtime(RuntimeError::Heap(e))),
            Ok(()) => Err(PipelineError::Runtime(RuntimeError::Heap(
                polm2_heap::HeapError::IntegrityViolation {
                    invariant: "corruption-undetected",
                    detail: format!(
                        "verifier passed a corrupted heap: {} ({})",
                        planted.kind.label(),
                        planted.detail
                    ),
                },
            ))),
        }
    }

    /// Drains the runtime's buffered allocation events into the Recorder.
    ///
    /// Without a fault injector, trie-form events take the columnar fast
    /// path ([`Recorder::ingest_nodes_checked`]) — no trace materialization,
    /// no per-event allocation. Chaos sessions (and the stack-walk recorder
    /// path) materialize [`AllocEvent`](polm2_runtime::AllocEvent)s so the
    /// injector can mutate them in flight; both routes feed the Recorder the
    /// same events in the same order.
    fn drain_events(&mut self, jvm: &mut Jvm) {
        if self.injector.is_none() {
            let recorder = &mut self.recorder;
            let counters = &mut self.counters;
            jvm.drain_alloc_batches(|trie, program, batch| {
                counters.records_dropped_corrupt +=
                    recorder.ingest_nodes_checked(trie, program, batch);
            });
            // Stack-walk events (if that path is configured) still arrive
            // materialized.
            if jvm.has_pending_alloc_events() {
                let events = jvm.drain_alloc_events();
                counters.records_dropped_corrupt += recorder.ingest_checked(events, jvm.program());
            }
            return;
        }
        let mut events = jvm.drain_alloc_events();
        if let Some(injector) = &self.injector {
            injector.borrow_mut().mutate_events(&mut events);
        }
        self.counters.records_dropped_corrupt +=
            self.recorder.ingest_checked(events, jvm.program());
    }

    /// Takes a snapshot unconditionally (the end-of-run snapshot, or tests),
    /// retrying per the recovery policy. After the retry budget is spent the
    /// snapshot is skipped and counted (or, with
    /// [`RecoveryPolicy::fail_on_snapshot_loss`], the error is returned).
    ///
    /// # Errors
    ///
    /// See [`after_op`](ProfilingSession::after_op).
    pub fn take_snapshot(&mut self, jvm: &mut Jvm) -> Result<(), PipelineError> {
        let mut backoff = self.recovery.retry_backoff;
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            let now = jvm.now();
            match self.dumper.snapshot(jvm.heap_mut(), now) {
                Ok(snap) => {
                    self.snapshots.push(snap);
                    self.cycles_at_last_snapshot = jvm.gc_log().cycle_count();
                    if let Some(journal) = self.journal.as_mut() {
                        // Flush pending records first so the journal's frame
                        // order mirrors the session, then stream the delta
                        // the push just computed.
                        let records = self.recorder.records();
                        journal.flush_records(&records, &mut self.counters, &mut |d| {
                            jvm.advance_mutator(d)
                        });
                        journal.sync_snapshots(&self.snapshots, &mut self.counters, &mut |d| {
                            jvm.advance_mutator(d)
                        });
                    }
                    return Ok(());
                }
                Err(source) => {
                    self.counters.snapshots_failed += 1;
                    if attempts > self.recovery.max_snapshot_retries {
                        self.counters.snapshots_lost += 1;
                        // Move the watermark anyway: one lost snapshot must
                        // not make every subsequent operation retry.
                        self.cycles_at_last_snapshot = jvm.gc_log().cycle_count();
                        if self.recovery.fail_on_snapshot_loss {
                            return Err(PipelineError::Snapshot { attempts, source });
                        }
                        return Ok(());
                    }
                    self.counters.snapshot_retries += 1;
                    // Wait out the failure on the simulated clock before
                    // retrying; the budget doubles per attempt.
                    jvm.advance_mutator(backoff);
                    backoff = backoff * 2;
                }
            }
        }
    }

    /// The snapshots taken so far.
    pub fn snapshots(&self) -> &SnapshotSeries {
        &self.snapshots
    }

    /// Allocations recorded so far.
    pub fn recorded_allocations(&self) -> u64 {
        self.recorder.records().total_records()
    }

    /// Faults absorbed and recovery actions taken so far.
    pub fn fault_counters(&self) -> FaultCounters {
        self.counters
    }

    /// Ground-truth injection tallies, if this session was built with
    /// [`with_faults`](ProfilingSession::with_faults).
    pub fn injected_faults(&self) -> Option<InjectedFaults> {
        self.injector.as_ref().map(|i| i.borrow().injected())
    }

    /// Folds the JVM-side robustness tallies into the session ledger:
    /// heap-verifier passes, emergency full collections, and (when the run
    /// hit its hard heap limit) the out-of-memory abort. Call once, right
    /// before [`finish`](ProfilingSession::finish) — the counters then land
    /// in the journal's commit frame, so a replayed session reports the same
    /// ledger as the uninterrupted run.
    pub fn absorb_runtime_health(&mut self, jvm: &Jvm, oom_aborts: u64) {
        self.counters.heap_verify_passes += jvm.heap().verify_passes();
        self.counters.emergency_collections += jvm.collector().emergency_collections();
        self.counters.heap_oom_aborts += oom_aborts;
    }

    /// Ends the profiling phase: final drain, final snapshot (unless the
    /// last scheduled snapshot already covers the current GC cycle), then
    /// analysis.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Snapshot`] per the recovery policy (see
    /// [`after_op`](ProfilingSession::after_op));
    /// [`PipelineError::RecorderBusy`] if the profiling JVM still holding
    /// the Recorder's agent is alive.
    pub fn finish(
        mut self,
        jvm: &mut Jvm,
        config: &AnalyzerConfig,
    ) -> Result<ProfilingReport, PipelineError> {
        self.drain_events(jvm);
        // End-of-run snapshot — but only if it adds information. When the
        // last per-cycle snapshot already covered the current GC cycle, a
        // second capture of the identical heap would double-count every
        // live object's survival.
        if self.snapshots.is_empty() || jvm.gc_log().cycle_count() > self.cycles_at_last_snapshot {
            self.take_snapshot(jvm)?;
        }
        if let Some(journal) = self.journal.as_mut() {
            let records = self.recorder.records();
            journal.commit(&records, &self.snapshots, &mut self.counters, &mut |d| {
                jvm.advance_mutator(d)
            });
        }
        let records = self.recorder.into_records()?;
        let outcome = Analyzer::new(*config).analyze(&records, &self.snapshots, jvm.program());
        let mut counters = self.counters;
        counters.traces_demoted += outcome.demoted_traces;
        Ok(ProfilingReport {
            outcome,
            snapshots: self.snapshots,
            counters,
        })
    }
}

/// Sets up the production phase: the Instrumenter agent plus launch-time
/// generation creation.
///
/// "The generations necessary to accommodate application objects are
/// automatically created (by calling the newGeneration NG2C API call) at
/// launch time" (§3.4).
#[derive(Debug)]
pub struct ProductionSetup {
    instrumenter: Instrumenter,
}

impl ProductionSetup {
    /// Creates the production setup for a profile.
    pub fn new(profile: AllocationProfile) -> Self {
        ProductionSetup {
            instrumenter: Instrumenter::new(profile),
        }
    }

    /// Creates a production setup that validates `profile` against the
    /// program first: entries whose locations no longer exist (the
    /// application changed since profiling, or the file was edited) are
    /// skipped and reported via [`stale`](ProductionSetup::stale) instead of
    /// being silently ignored at rewrite time.
    pub fn checked(profile: &AllocationProfile, program: &Program) -> Self {
        ProductionSetup {
            instrumenter: Instrumenter::checked(profile, program),
        }
    }

    /// Profile entries dropped as stale (empty for
    /// [`new`](ProductionSetup::new)).
    pub fn stale(&self) -> &ProfileValidation {
        self.instrumenter.stale()
    }

    /// The stale skips as fault counters (for merging into a run's ledger).
    pub fn fault_counters(&self) -> FaultCounters {
        let stale = self.instrumenter.stale();
        FaultCounters {
            stale_sites_skipped: stale.stale_sites.len() as u64,
            stale_gen_calls_skipped: stale.stale_gen_calls.len() as u64,
            ..FaultCounters::new()
        }
    }

    /// The Instrumenter's load-time agent; install it in the production JVM.
    pub fn agent(&self) -> Box<dyn ClassTransformer> {
        self.instrumenter.agent()
    }

    /// Creates the generations the profile references (call once, right
    /// after building the JVM).
    pub fn prepare_generations(&self, jvm: &mut Jvm) {
        let max = self.instrumenter.profile().max_gen().raw();
        // The collector starts with generations 0 (young) and 1 (old);
        // dynamic generations 2..=max are created here.
        for _ in 1..max {
            jvm.new_generation();
        }
    }

    /// What the agent rewrote.
    pub fn stats(&self) -> InstrumentationStats {
        self.instrumenter.stats()
    }

    /// The profile being applied.
    pub fn profile(&self) -> &AllocationProfile {
        self.instrumenter.profile()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polm2_gc::{GcConfig, Ng2cCollector};
    use polm2_heap::GenId;
    use polm2_runtime::{
        ClassDef, HookAction, HookRegistry, Instr, MethodDef, Program, RuntimeConfig, SizeSpec,
    };

    /// A memtable-style toy workload: `put` cells that live until `flush`,
    /// plus `scratch` garbage.
    fn workload_program() -> Program {
        let mut p = Program::new();
        p.add_class(
            ClassDef::new("Store")
                .with_method(
                    MethodDef::new("put")
                        .push(Instr::call("Cell", "create", 10))
                        .push(Instr::native("insert", 11)),
                )
                .with_method(MethodDef::new("scratch").push(Instr::alloc(
                    "Tmp",
                    SizeSpec::Fixed(512),
                    20,
                )))
                .with_method(MethodDef::new("flush").push(Instr::native("flush", 30))),
        );
        p.add_class(ClassDef::new("Cell").with_method(
            MethodDef::new("create").push(Instr::alloc("Cell", SizeSpec::Fixed(1024), 5)),
        ));
        p
    }

    fn workload_hooks() -> HookRegistry {
        let mut h = HookRegistry::new();
        h.register_action("insert", |ctx| {
            let obj = ctx.acc.expect("cell before insert");
            let slot = ctx.heap.roots_mut().create_slot("memtable");
            ctx.heap.roots_mut().push(slot, obj);
            HookAction::default()
        });
        h.register_action("flush", |ctx| {
            if let Some(slot) = ctx.heap.roots().find_slot("memtable") {
                ctx.heap.roots_mut().clear_slot(slot);
            }
            HookAction::default()
        });
        h
    }

    /// Cohorts must outlive several GC cycles for the analyzer to see them:
    /// each batch churns ~1.5 MiB through the 1 MiB young generation, and the
    /// memtable flushes only every third batch.
    fn drive(jvm: &mut Jvm, session: Option<&mut ProfilingSession>, batches: usize) {
        let t = jvm.spawn_thread();
        let mut session = session;
        for batch in 0..batches {
            for _ in 0..300 {
                jvm.invoke(t, "Store", "put").unwrap();
                for _ in 0..8 {
                    jvm.invoke(t, "Store", "scratch").unwrap();
                }
                if let Some(s) = session.as_deref_mut() {
                    s.after_op(jvm).expect("after_op");
                }
            }
            if batch % 3 == 2 {
                jvm.invoke(t, "Store", "flush").unwrap();
            }
        }
    }

    #[test]
    fn profiling_phase_produces_a_useful_profile() {
        let mut session = ProfilingSession::new(SnapshotPolicy::default());
        let mut jvm = Jvm::builder(RuntimeConfig::small())
            .hooks(workload_hooks())
            .transformer(session.recorder_agent())
            .build(workload_program())
            .unwrap();
        assert_eq!(session.instrumented_sites(), 2);
        drive(&mut jvm, Some(&mut session), 9);
        assert!(session.recorded_allocations() > 0);
        assert!(
            session.snapshots().len() > 1,
            "GC cycles must trigger snapshots"
        );

        let report = session
            .finish(&mut jvm, &AnalyzerConfig::default())
            .unwrap();
        assert!(
            report.counters.is_clean(),
            "fault-free run: {}",
            report.counters
        );
        let outcome = report.outcome;
        // The cell site is pretenured; the scratch site is not.
        let cell = outcome
            .profile
            .site_at(&polm2_runtime::CodeLoc::new("Cell", "create", 5))
            .expect("cell site pretenured");
        assert!(!cell.gen.is_young());
        assert!(outcome
            .profile
            .site_at(&polm2_runtime::CodeLoc::new("Store", "scratch", 20))
            .is_none());
    }

    #[test]
    fn production_phase_pretenures_according_to_profile() {
        // Phase 1: profile.
        let mut session = ProfilingSession::new(SnapshotPolicy::default());
        let mut jvm = Jvm::builder(RuntimeConfig::small())
            .hooks(workload_hooks())
            .transformer(session.recorder_agent())
            .build(workload_program())
            .unwrap();
        drive(&mut jvm, Some(&mut session), 9);
        let outcome = session
            .finish(&mut jvm, &AnalyzerConfig::default())
            .unwrap()
            .outcome;
        assert!(!outcome.profile.is_empty());

        // Phase 2: production under NG2C + Instrumenter.
        let setup = ProductionSetup::new(outcome.profile.clone());
        let mut jvm = Jvm::builder(RuntimeConfig::small())
            .collector(Box::new(Ng2cCollector::new(GcConfig::default())))
            .hooks(workload_hooks())
            .transformer(setup.agent())
            .build(workload_program())
            .unwrap();
        setup.prepare_generations(&mut jvm);
        drive(&mut jvm, None, 7);
        assert!(setup.stats().annotated_sites > 0);

        // Cells ended up outside the young generation at allocation time.
        let mut pretenured = 0;
        let mut total_cells = 0;
        let cell_class = jvm.heap().classes().lookup("Cell").unwrap();
        let live = jvm.heap_mut().mark_live(&[]);
        for id in live.iter() {
            let rec = jvm.heap().object(id).unwrap();
            if rec.class() == cell_class {
                total_cells += 1;
                if !rec.allocated_gen().is_young() {
                    pretenured += 1;
                }
            }
        }
        assert!(total_cells > 0);
        assert_eq!(pretenured, total_cells, "every live cell was pretenured");
    }

    #[test]
    fn prepare_generations_creates_profile_generations() {
        let mut profile = AllocationProfile::new();
        profile.add_site(crate::PretenuredSite {
            loc: polm2_runtime::CodeLoc::new("X", "y", 1),
            gen: GenId::new(3),
            local: true,
        });
        let setup = ProductionSetup::new(profile);
        let mut jvm = Jvm::builder(RuntimeConfig::small())
            .collector(Box::new(Ng2cCollector::new(GcConfig::default())))
            .build(workload_program())
            .unwrap();
        setup.prepare_generations(&mut jvm);
        // Young + old + gens 2 and 3 = four spaces.
        assert_eq!(jvm.heap().spaces().len(), 4);
    }

    #[test]
    fn snapshot_policy_respects_cycle_stride() {
        let mut s1 = ProfilingSession::new(SnapshotPolicy { every_n_cycles: 1 });
        let mut jvm = Jvm::builder(RuntimeConfig::small())
            .hooks(workload_hooks())
            .transformer(s1.recorder_agent())
            .build(workload_program())
            .unwrap();
        drive(&mut jvm, Some(&mut s1), 3);
        let every_cycle = s1.snapshots().len();

        let mut s4 = ProfilingSession::new(SnapshotPolicy { every_n_cycles: 4 });
        let mut jvm = Jvm::builder(RuntimeConfig::small())
            .hooks(workload_hooks())
            .transformer(s4.recorder_agent())
            .build(workload_program())
            .unwrap();
        drive(&mut jvm, Some(&mut s4), 3);
        let every_fourth = s4.snapshots().len();

        assert!(
            every_fourth < every_cycle,
            "{every_fourth} !< {every_cycle}"
        );
    }

    /// A dumper whose first `fail_next` capture attempts fail.
    struct FlakyDumper {
        inner: CriuDumper,
        fail_next: u32,
    }

    impl HeapDumper for FlakyDumper {
        fn name(&self) -> &'static str {
            "flaky"
        }

        fn snapshot(
            &mut self,
            heap: &mut polm2_heap::Heap,
            now: polm2_metrics::SimTime,
        ) -> Result<polm2_snapshot::Snapshot, polm2_snapshot::SnapshotError> {
            if self.fail_next > 0 {
                self.fail_next -= 1;
                return Err(polm2_snapshot::SnapshotError {
                    seq: self.inner.snapshots_taken(),
                    reason: "dump coordinator down".to_string(),
                });
            }
            self.inner.snapshot(heap, now)
        }
    }

    fn boot(session: &ProfilingSession) -> Jvm {
        Jvm::builder(RuntimeConfig::small())
            .hooks(workload_hooks())
            .transformer(session.recorder_agent())
            .build(workload_program())
            .unwrap()
    }

    #[test]
    fn transient_snapshot_failures_are_retried_on_the_simulated_clock() {
        let dumper = FlakyDumper {
            inner: CriuDumper::new(),
            fail_next: 2,
        };
        let mut session =
            ProfilingSession::with_dumper(SnapshotPolicy::default(), Box::new(dumper));
        let mut jvm = boot(&session);
        let before = jvm.now();
        session.take_snapshot(&mut jvm).unwrap();
        assert_eq!(session.snapshots().len(), 1, "third attempt succeeds");
        let counters = session.fault_counters();
        assert_eq!(counters.snapshots_failed, 2);
        assert_eq!(counters.snapshot_retries, 2);
        assert_eq!(counters.snapshots_lost, 0);
        // 10ms + 20ms of backoff were charged to the simulated clock.
        assert!(jvm.now().saturating_since(before) >= SimDuration::from_millis(30));
    }

    #[test]
    fn exhausted_retries_skip_and_count_by_default() {
        let dumper = FlakyDumper {
            inner: CriuDumper::new(),
            fail_next: u32::MAX,
        };
        let mut session =
            ProfilingSession::with_dumper(SnapshotPolicy::default(), Box::new(dumper));
        let mut jvm = boot(&session);
        session.take_snapshot(&mut jvm).unwrap();
        assert_eq!(session.snapshots().len(), 0);
        let counters = session.fault_counters();
        assert_eq!(counters.snapshots_failed, 3, "initial attempt + 2 retries");
        assert_eq!(counters.snapshots_lost, 1);
    }

    #[test]
    fn strict_recovery_policy_surfaces_snapshot_loss_as_an_error() {
        let dumper = FlakyDumper {
            inner: CriuDumper::new(),
            fail_next: u32::MAX,
        };
        let session = ProfilingSession::with_dumper(SnapshotPolicy::default(), Box::new(dumper))
            .with_recovery(RecoveryPolicy {
                fail_on_snapshot_loss: true,
                ..RecoveryPolicy::default()
            });
        let mut session = session;
        let mut jvm = boot(&session);
        let err = session.take_snapshot(&mut jvm).unwrap_err();
        match err {
            PipelineError::Snapshot { attempts, source } => {
                assert_eq!(attempts, 3);
                assert!(source.reason.contains("down"));
            }
            other => panic!("expected Snapshot error, got {other}"),
        }
    }

    #[test]
    fn finish_skips_redundant_end_of_run_snapshot() {
        let mut session = ProfilingSession::new(SnapshotPolicy::default());
        let mut jvm = boot(&session);
        drive(&mut jvm, Some(&mut session), 9);
        // Force a snapshot at the current cycle: finish must not add a
        // second capture of the identical heap.
        session.take_snapshot(&mut jvm).unwrap();
        let taken = session.snapshots().len();
        let report = session
            .finish(&mut jvm, &AnalyzerConfig::default())
            .unwrap();
        assert_eq!(
            report.snapshots.len(),
            taken,
            "no duplicate end-of-run snapshot"
        );

        // But a session that never snapshotted still gets its final one.
        let session = ProfilingSession::new(SnapshotPolicy::default());
        let mut jvm = boot(&session);
        let report = session
            .finish(&mut jvm, &AnalyzerConfig::default())
            .unwrap();
        assert_eq!(report.snapshots.len(), 1);
    }

    #[test]
    fn checked_setup_reports_stale_profile_entries() {
        let mut profile = AllocationProfile::new();
        profile.add_site(crate::PretenuredSite {
            loc: polm2_runtime::CodeLoc::new("Cell", "create", 5),
            gen: GenId::new(2),
            local: false,
        });
        profile.add_site(crate::PretenuredSite {
            loc: polm2_runtime::CodeLoc::new("Deleted", "method", 1),
            gen: GenId::new(2),
            local: true,
        });
        let setup = ProductionSetup::checked(&profile, &workload_program());
        assert_eq!(setup.stale().stale_sites.len(), 1);
        assert_eq!(setup.fault_counters().stale_sites_skipped, 1);
        assert_eq!(setup.profile().sites().len(), 1, "valid entry survives");
        assert!(ProductionSetup::new(profile).stale().is_clean());
    }
}
