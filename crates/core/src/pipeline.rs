//! The two phases of POLM2 (paper §3.5): profiling and production.

use polm2_runtime::{ClassTransformer, Jvm};
use polm2_snapshot::{CriuDumper, HeapDumper, SnapshotSeries};

use crate::analyzer::{AnalysisOutcome, Analyzer, AnalyzerConfig};
use crate::instrumenter::{InstrumentationStats, Instrumenter};
use crate::recorder::Recorder;
use crate::AllocationProfile;

/// When the Recorder asks the Dumper for a snapshot.
///
/// "By default (this is configurable), the Recorder asks for a new memory
/// snapshot at the end of every GC cycle" (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotPolicy {
    /// Take a snapshot after every `every_n_cycles` completed GC cycles.
    pub every_n_cycles: u32,
}

impl Default for SnapshotPolicy {
    fn default() -> Self {
        SnapshotPolicy { every_n_cycles: 1 }
    }
}

/// Drives the profiling phase: Recorder + Dumper + Analyzer.
///
/// The workload driver calls [`after_op`](ProfilingSession::after_op) after
/// every operation; the session drains allocation events into the Recorder
/// and, whenever the policy says a GC cycle has completed, asks the Dumper
/// for an incremental snapshot. [`finish`](ProfilingSession::finish) runs the
/// Analyzer and yields the allocation profile.
pub struct ProfilingSession {
    recorder: Recorder,
    dumper: Box<dyn HeapDumper>,
    snapshots: SnapshotSeries,
    policy: SnapshotPolicy,
    cycles_at_last_snapshot: usize,
}

impl std::fmt::Debug for ProfilingSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProfilingSession")
            .field("dumper", &self.dumper.name())
            .field("snapshots", &self.snapshots.len())
            .field("policy", &self.policy)
            .finish_non_exhaustive()
    }
}

impl ProfilingSession {
    /// Creates a session with the CRIU Dumper.
    pub fn new(policy: SnapshotPolicy) -> Self {
        ProfilingSession::with_dumper(policy, Box::new(CriuDumper::new()))
    }

    /// Creates a session with a custom dumper (ablations, jmap baseline).
    pub fn with_dumper(policy: SnapshotPolicy, dumper: Box<dyn HeapDumper>) -> Self {
        ProfilingSession {
            recorder: Recorder::new(),
            dumper,
            snapshots: SnapshotSeries::new(),
            policy,
            cycles_at_last_snapshot: 0,
        }
    }

    /// The Recorder's load-time agent; install it in the profiling JVM.
    pub fn recorder_agent(&self) -> Box<dyn ClassTransformer> {
        self.recorder.agent()
    }

    /// Allocation sites the Recorder instrumented at load time.
    pub fn instrumented_sites(&self) -> u64 {
        self.recorder.instrumented_sites()
    }

    /// Called after each workload operation: drains allocation events and
    /// takes a snapshot if a GC cycle completed since the last one.
    pub fn after_op(&mut self, jvm: &mut Jvm) {
        self.recorder.ingest(jvm.drain_alloc_events());
        let cycles = jvm.gc_log().cycle_count();
        if cycles >= self.cycles_at_last_snapshot + self.policy.every_n_cycles as usize {
            self.take_snapshot(jvm);
        }
    }

    /// Takes a snapshot unconditionally (the end-of-run snapshot, or tests).
    pub fn take_snapshot(&mut self, jvm: &mut Jvm) {
        let now = jvm.now();
        let snap = self.dumper.snapshot(jvm.heap_mut(), now);
        self.snapshots.push(snap);
        self.cycles_at_last_snapshot = jvm.gc_log().cycle_count();
    }

    /// The snapshots taken so far.
    pub fn snapshots(&self) -> &SnapshotSeries {
        &self.snapshots
    }

    /// Allocations recorded so far.
    pub fn recorded_allocations(&self) -> u64 {
        self.recorder.records().total_records()
    }

    /// Ends the profiling phase: final drain, final snapshot, analysis.
    pub fn finish(mut self, jvm: &mut Jvm, config: &AnalyzerConfig) -> AnalysisOutcome {
        self.recorder.ingest(jvm.drain_alloc_events());
        self.take_snapshot(jvm);
        let records = self.recorder.into_records();
        Analyzer::new(*config).analyze(&records, &self.snapshots, jvm.program())
    }
}

/// Sets up the production phase: the Instrumenter agent plus launch-time
/// generation creation.
///
/// "The generations necessary to accommodate application objects are
/// automatically created (by calling the newGeneration NG2C API call) at
/// launch time" (§3.4).
#[derive(Debug)]
pub struct ProductionSetup {
    instrumenter: Instrumenter,
}

impl ProductionSetup {
    /// Creates the production setup for a profile.
    pub fn new(profile: AllocationProfile) -> Self {
        ProductionSetup { instrumenter: Instrumenter::new(profile) }
    }

    /// The Instrumenter's load-time agent; install it in the production JVM.
    pub fn agent(&self) -> Box<dyn ClassTransformer> {
        self.instrumenter.agent()
    }

    /// Creates the generations the profile references (call once, right
    /// after building the JVM).
    pub fn prepare_generations(&self, jvm: &mut Jvm) {
        let max = self.instrumenter.profile().max_gen().raw();
        // The collector starts with generations 0 (young) and 1 (old);
        // dynamic generations 2..=max are created here.
        for _ in 1..max {
            jvm.new_generation();
        }
    }

    /// What the agent rewrote.
    pub fn stats(&self) -> InstrumentationStats {
        self.instrumenter.stats()
    }

    /// The profile being applied.
    pub fn profile(&self) -> &AllocationProfile {
        self.instrumenter.profile()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polm2_gc::{GcConfig, Ng2cCollector};
    use polm2_heap::GenId;
    use polm2_runtime::{
        ClassDef, HookAction, HookRegistry, Instr, MethodDef, Program, RuntimeConfig, SizeSpec,
    };

    /// A memtable-style toy workload: `put` cells that live until `flush`,
    /// plus `scratch` garbage.
    fn workload_program() -> Program {
        let mut p = Program::new();
        p.add_class(
            ClassDef::new("Store")
                .with_method(
                    MethodDef::new("put")
                        .push(Instr::call("Cell", "create", 10))
                        .push(Instr::native("insert", 11)),
                )
                .with_method(
                    MethodDef::new("scratch").push(Instr::alloc("Tmp", SizeSpec::Fixed(512), 20)),
                )
                .with_method(MethodDef::new("flush").push(Instr::native("flush", 30))),
        );
        p.add_class(ClassDef::new("Cell").with_method(
            MethodDef::new("create").push(Instr::alloc("Cell", SizeSpec::Fixed(1024), 5)),
        ));
        p
    }

    fn workload_hooks() -> HookRegistry {
        let mut h = HookRegistry::new();
        h.register_action("insert", |ctx| {
            let obj = ctx.acc.expect("cell before insert");
            let slot = ctx.heap.roots_mut().create_slot("memtable");
            ctx.heap.roots_mut().push(slot, obj);
            HookAction::default()
        });
        h.register_action("flush", |ctx| {
            if let Some(slot) = ctx.heap.roots().find_slot("memtable") {
                ctx.heap.roots_mut().clear_slot(slot);
            }
            HookAction::default()
        });
        h
    }

    /// Cohorts must outlive several GC cycles for the analyzer to see them:
    /// each batch churns ~1.5 MiB through the 1 MiB young generation, and the
    /// memtable flushes only every third batch.
    fn drive(jvm: &mut Jvm, session: Option<&mut ProfilingSession>, batches: usize) {
        let t = jvm.spawn_thread();
        let mut session = session;
        for batch in 0..batches {
            for _ in 0..300 {
                jvm.invoke(t, "Store", "put").unwrap();
                for _ in 0..8 {
                    jvm.invoke(t, "Store", "scratch").unwrap();
                }
                if let Some(s) = session.as_deref_mut() {
                    s.after_op(jvm);
                }
            }
            if batch % 3 == 2 {
                jvm.invoke(t, "Store", "flush").unwrap();
            }
        }
    }

    #[test]
    fn profiling_phase_produces_a_useful_profile() {
        let mut session = ProfilingSession::new(SnapshotPolicy::default());
        let mut jvm = Jvm::builder(RuntimeConfig::small())
            .hooks(workload_hooks())
            .transformer(session.recorder_agent())
            .build(workload_program())
            .unwrap();
        assert_eq!(session.instrumented_sites(), 2);
        drive(&mut jvm, Some(&mut session), 9);
        assert!(session.recorded_allocations() > 0);
        assert!(session.snapshots().len() > 1, "GC cycles must trigger snapshots");

        let outcome = session.finish(&mut jvm, &AnalyzerConfig::default());
        // The cell site is pretenured; the scratch site is not.
        let cell = outcome
            .profile
            .site_at(&polm2_runtime::CodeLoc::new("Cell", "create", 5))
            .expect("cell site pretenured");
        assert!(!cell.gen.is_young());
        assert!(outcome
            .profile
            .site_at(&polm2_runtime::CodeLoc::new("Store", "scratch", 20))
            .is_none());
    }

    #[test]
    fn production_phase_pretenures_according_to_profile() {
        // Phase 1: profile.
        let mut session = ProfilingSession::new(SnapshotPolicy::default());
        let mut jvm = Jvm::builder(RuntimeConfig::small())
            .hooks(workload_hooks())
            .transformer(session.recorder_agent())
            .build(workload_program())
            .unwrap();
        drive(&mut jvm, Some(&mut session), 9);
        let outcome = session.finish(&mut jvm, &AnalyzerConfig::default());
        assert!(!outcome.profile.is_empty());

        // Phase 2: production under NG2C + Instrumenter.
        let setup = ProductionSetup::new(outcome.profile.clone());
        let mut jvm = Jvm::builder(RuntimeConfig::small())
            .collector(Box::new(Ng2cCollector::new(GcConfig::default())))
            .hooks(workload_hooks())
            .transformer(setup.agent())
            .build(workload_program())
            .unwrap();
        setup.prepare_generations(&mut jvm);
        drive(&mut jvm, None, 7);
        assert!(setup.stats().annotated_sites > 0);

        // Cells ended up outside the young generation at allocation time.
        let mut pretenured = 0;
        let mut total_cells = 0;
        let cell_class = jvm.heap().classes().lookup("Cell").unwrap();
        let live = jvm.heap_mut().mark_live(&[]);
        for id in live.iter() {
            let rec = jvm.heap().object(id).unwrap();
            if rec.class() == cell_class {
                total_cells += 1;
                if !rec.allocated_gen().is_young() {
                    pretenured += 1;
                }
            }
        }
        assert!(total_cells > 0);
        assert_eq!(pretenured, total_cells, "every live cell was pretenured");
    }

    #[test]
    fn prepare_generations_creates_profile_generations() {
        let mut profile = AllocationProfile::new();
        profile.add_site(crate::PretenuredSite {
            loc: polm2_runtime::CodeLoc::new("X", "y", 1),
            gen: GenId::new(3),
            local: true,
        });
        let setup = ProductionSetup::new(profile);
        let mut jvm = Jvm::builder(RuntimeConfig::small())
            .collector(Box::new(Ng2cCollector::new(GcConfig::default())))
            .build(workload_program())
            .unwrap();
        setup.prepare_generations(&mut jvm);
        // Young + old + gens 2 and 3 = four spaces.
        assert_eq!(jvm.heap().spaces().len(), 4);
    }

    #[test]
    fn snapshot_policy_respects_cycle_stride() {
        let mut s1 = ProfilingSession::new(SnapshotPolicy { every_n_cycles: 1 });
        let mut jvm = Jvm::builder(RuntimeConfig::small())
            .hooks(workload_hooks())
            .transformer(s1.recorder_agent())
            .build(workload_program())
            .unwrap();
        drive(&mut jvm, Some(&mut s1), 3);
        let every_cycle = s1.snapshots().len();

        let mut s4 = ProfilingSession::new(SnapshotPolicy { every_n_cycles: 4 });
        let mut jvm = Jvm::builder(RuntimeConfig::small())
            .hooks(workload_hooks())
            .transformer(s4.recorder_agent())
            .build(workload_program())
            .unwrap();
        drive(&mut jvm, Some(&mut s4), 3);
        let every_fourth = s4.snapshots().len();

        assert!(every_fourth < every_cycle, "{every_fourth} !< {every_cycle}");
    }
}
