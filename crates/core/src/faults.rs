//! Deterministic, seeded fault injection for the profiling pipeline.
//!
//! The paper's pipeline crosses three process boundaries — the in-process
//! Recorder agent, the external CRIU Dumper, and the offline Analyzer reading
//! files — and every boundary can fail: a dump RPC times out, a record stream
//! is cut short, a profile file is corrupted on disk. This module reproduces
//! those failures *inside the simulation*, driven by a seeded PRNG so chaos
//! runs are exactly reproducible: same seed, same faults, same degraded (but
//! never wrong) profile.
//!
//! Fault kinds:
//!
//! * **Snapshot failure** — the Dumper returns an error instead of a
//!   snapshot ([`FaultyDumper`]); the session retries with bounded backoff
//!   against the simulated clock, then skips and counts.
//! * **Snapshot truncation** — the dump succeeds but loses a fraction of its
//!   live-object hashes (a partial image). Objects merely look shorter-lived.
//! * **Record drop / duplication / corruption** — the Recorder's event
//!   stream loses events, repeats them, or delivers structurally invalid
//!   frames (caught at ingest and dropped with a counter).
//! * **Profile-text corruption** — bytes of a serialized profile are
//!   clobbered before parsing (surfaces as a typed parse error downstream).
//! * **Disk faults** — the session journal's I/O surface misbehaves
//!   ([`FaultyMedia`]): transient `EIO` (retried with backoff on the
//!   simulated clock), silent short writes (torn frames), single bit flips
//!   (caught by the per-frame CRC), and torn renames (a segment vanishes
//!   mid-rotation, exactly the crash-between-unlink-and-link window).
//!
//! Every fault only ever *removes or garbles evidence*; none fabricates a
//! plausible long-lived object. That is what makes degradation graceful: the
//! Analyzer can only lose pretenuring opportunities, never invent them.

use std::cell::RefCell;
use std::io;
use std::path::Path;
use std::rc::Rc;

use polm2_heap::{CorruptionKind, Heap, IdHashSet, IdentityHash, PlantedCorruption};
use polm2_metrics::SimTime;
use polm2_runtime::{AllocEvent, TraceFrame};
use polm2_snapshot::{HeapDumper, JournalMedia, Snapshot, SnapshotError};

/// Which faults to inject, and how often. All rates are probabilities in
/// `[0, 1]`; the default is all-zero (no faults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// PRNG seed; the same seed reproduces the same fault sequence.
    pub seed: u64,
    /// Probability that a snapshot capture attempt fails outright.
    pub snapshot_failure_rate: f64,
    /// Probability that a captured snapshot is truncated.
    pub snapshot_truncation_rate: f64,
    /// Fraction of live-object hashes a truncated snapshot loses.
    pub truncated_fraction: f64,
    /// Per-event probability that an allocation record is dropped.
    pub record_drop_rate: f64,
    /// Per-event probability that an allocation record is duplicated.
    pub record_duplicate_rate: f64,
    /// Per-event probability that an allocation record is structurally
    /// corrupted (invalid trace frames; dropped at ingest).
    pub record_corrupt_rate: f64,
    /// Per-character probability that profile text is clobbered by
    /// [`FaultInjector::corrupt_profile_text`].
    pub profile_corrupt_rate: f64,
    /// Per-operation probability that a journal write/sync/rename fails with
    /// a transient `EIO` *before touching the disk* (so a retry is safe and
    /// complete).
    pub io_error_rate: f64,
    /// Per-append probability that only a prefix of the bytes reaches the
    /// disk, silently — the torn-frame crash signature.
    pub io_short_write_rate: f64,
    /// Per-append probability that one bit of the written bytes flips —
    /// caught by the per-frame CRC at recovery.
    pub io_bit_flip_rate: f64,
    /// Per-rename probability that the file vanishes instead of arriving at
    /// its destination (crash between unlink and link).
    pub io_torn_rename_rate: f64,
    /// Per-operation probability that one bit of a live object's heap memory
    /// flips (real backend only; detected by the integrity verifier).
    pub heap_bit_flip_rate: f64,
    /// Per-operation probability that a byte of a live object's header is
    /// clobbered (real backend only).
    pub heap_header_clobber_rate: f64,
    /// Per-operation probability of a stray write into free or unallocated
    /// heap memory (real backend only).
    pub heap_stray_write_rate: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            snapshot_failure_rate: 0.0,
            snapshot_truncation_rate: 0.0,
            truncated_fraction: 0.5,
            record_drop_rate: 0.0,
            record_duplicate_rate: 0.0,
            record_corrupt_rate: 0.0,
            profile_corrupt_rate: 0.0,
            io_error_rate: 0.0,
            io_short_write_rate: 0.0,
            io_bit_flip_rate: 0.0,
            io_torn_rename_rate: 0.0,
            heap_bit_flip_rate: 0.0,
            heap_header_clobber_rate: 0.0,
            heap_stray_write_rate: 0.0,
        }
    }
}

impl FaultConfig {
    /// A config that injects every fault kind at `rate` (truncation keeps
    /// its default lost fraction).
    pub fn all_at(rate: f64, seed: u64) -> Self {
        FaultConfig {
            seed,
            snapshot_failure_rate: rate,
            snapshot_truncation_rate: rate,
            record_drop_rate: rate,
            record_duplicate_rate: rate,
            record_corrupt_rate: rate,
            profile_corrupt_rate: rate,
            io_error_rate: rate,
            io_short_write_rate: rate,
            io_bit_flip_rate: rate,
            io_torn_rename_rate: rate,
            ..FaultConfig::default()
        }
    }

    /// A config that injects only disk faults, each at `rate` (the journal
    /// chaos suite: the pipeline itself stays healthy, the disk does not).
    pub fn disk_only_at(rate: f64, seed: u64) -> Self {
        FaultConfig {
            seed,
            io_error_rate: rate,
            io_short_write_rate: rate,
            io_bit_flip_rate: rate,
            io_torn_rename_rate: rate,
            ..FaultConfig::default()
        }
    }

    /// A config that injects only memory corruption, each class at `rate`
    /// (the `--chaos-heap` arm: the pipeline and disk stay healthy, the
    /// heap's bytes do not). Kept out of [`FaultConfig::all_at`] so existing
    /// chaos suites keep their exact PRNG streams.
    pub fn heap_only_at(rate: f64, seed: u64) -> Self {
        FaultConfig {
            seed,
            heap_bit_flip_rate: rate,
            heap_header_clobber_rate: rate,
            heap_stray_write_rate: rate,
            ..FaultConfig::default()
        }
    }

    /// True if no fault can ever fire (all rates zero).
    pub fn is_inert(&self) -> bool {
        self.snapshot_failure_rate == 0.0
            && self.snapshot_truncation_rate == 0.0
            && self.record_drop_rate == 0.0
            && self.record_duplicate_rate == 0.0
            && self.record_corrupt_rate == 0.0
            && self.profile_corrupt_rate == 0.0
            && self.io_error_rate == 0.0
            && self.io_short_write_rate == 0.0
            && self.io_bit_flip_rate == 0.0
            && self.io_torn_rename_rate == 0.0
            && !self.corrupts_heap()
    }

    /// True if any memory-corruption class can fire.
    pub fn corrupts_heap(&self) -> bool {
        self.heap_bit_flip_rate > 0.0
            || self.heap_header_clobber_rate > 0.0
            || self.heap_stray_write_rate > 0.0
    }
}

/// Tallies of the faults an injector actually fired (ground truth for tests;
/// the pipeline's own view of what it *detected* lives in
/// [`polm2_metrics::FaultCounters`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectedFaults {
    /// Snapshot capture attempts failed.
    pub snapshot_failures: u64,
    /// Snapshots truncated.
    pub snapshots_truncated: u64,
    /// Live-object hashes removed by truncation.
    pub hashes_lost: u64,
    /// Allocation events dropped.
    pub records_dropped: u64,
    /// Allocation events duplicated.
    pub records_duplicated: u64,
    /// Allocation events structurally corrupted.
    pub records_corrupted: u64,
    /// Characters clobbered in profile text.
    pub profile_chars_corrupted: u64,
    /// Transient I/O errors returned to the journal writer.
    pub io_errors: u64,
    /// Journal appends silently cut short.
    pub io_short_writes: u64,
    /// Journal appends with one bit flipped.
    pub io_bit_flips: u64,
    /// Journal renames that lost the file.
    pub io_torn_renames: u64,
    /// Bits flipped inside live heap objects.
    pub heap_bit_flips: u64,
    /// Live-object headers clobbered in heap memory.
    pub heap_header_clobbers: u64,
    /// Stray writes planted in free or unallocated heap memory.
    pub heap_stray_writes: u64,
}

impl InjectedFaults {
    /// Total memory corruptions planted (the chaos arm's ground truth: the
    /// verifier must detect exactly this many).
    pub fn heap_corruptions(&self) -> u64 {
        self.heap_bit_flips + self.heap_header_clobbers + self.heap_stray_writes
    }
}

/// The seeded fault source. Deterministic: a splitmix64 stream drives every
/// decision, so no wall-clock or OS entropy enters the simulation.
#[derive(Debug)]
pub struct FaultInjector {
    config: FaultConfig,
    state: u64,
    injected: InjectedFaults,
}

impl FaultInjector {
    /// Creates an injector for `config`.
    pub fn new(config: FaultConfig) -> Self {
        // Offset the seed so seed 0 does not start on splitmix64's weak
        // all-zero state.
        FaultInjector {
            config,
            state: config.seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
            injected: InjectedFaults::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// What has actually been injected so far.
    pub fn injected(&self) -> InjectedFaults {
        self.injected
    }

    fn next_u64(&mut self) -> u64 {
        // splitmix64: tiny, seedable, and plenty for fault scheduling.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn roll(&mut self, rate: f64) -> bool {
        rate > 0.0 && self.next_f64() < rate
    }

    /// Applies record-stream faults to a drained event batch in place.
    pub fn mutate_events(&mut self, events: &mut Vec<AllocEvent>) {
        if self.config.record_drop_rate == 0.0
            && self.config.record_duplicate_rate == 0.0
            && self.config.record_corrupt_rate == 0.0
        {
            return;
        }
        let mut out = Vec::with_capacity(events.len());
        for mut event in events.drain(..) {
            if self.roll(self.config.record_drop_rate) {
                self.injected.records_dropped += 1;
                continue;
            }
            if self.roll(self.config.record_corrupt_rate) {
                self.corrupt_event(&mut event);
                self.injected.records_corrupted += 1;
            } else if self.roll(self.config.record_duplicate_rate) {
                self.injected.records_duplicated += 1;
                out.push(event.clone());
            }
            out.push(event);
        }
        *events = out;
    }

    /// Structurally corrupts one event's trace. The corruption is always
    /// *detectable* (an empty trace or frame indices no program resolves):
    /// corrupt records must be caught at ingest and dropped, never silently
    /// misattributed to a real allocation path.
    fn corrupt_event(&mut self, event: &mut AllocEvent) {
        match self.next_u64() % 3 {
            0 => event.trace.clear(),
            1 => {
                if let Some(frame) = event.trace.first_mut() {
                    frame.class_idx = u16::MAX;
                } else {
                    event.trace.push(TraceFrame {
                        class_idx: u16::MAX,
                        method_idx: 0,
                        line: 0,
                    });
                }
            }
            _ => {
                if let Some(frame) = event.trace.last_mut() {
                    frame.method_idx = u16::MAX;
                } else {
                    event.trace.push(TraceFrame {
                        class_idx: 0,
                        method_idx: u16::MAX,
                        line: 0,
                    });
                }
            }
        }
    }

    /// Rolls the memory-corruption rates and, on a hit, plants one seeded
    /// corruption directly into real heap memory (at most one per call).
    /// Returns the planted ground truth, or `None` when no roll hit or the
    /// heap had no eligible target (sim backend, empty heap).
    ///
    /// The guard keeps the PRNG stream untouched when every heap rate is
    /// zero, so adding this arm never perturbs existing chaos suites.
    pub fn maybe_corrupt_heap(&mut self, heap: &mut Heap) -> Option<PlantedCorruption> {
        if !self.config.corrupts_heap() {
            return None;
        }
        for kind in CorruptionKind::ALL {
            let rate = match kind {
                CorruptionKind::BitFlip => self.config.heap_bit_flip_rate,
                CorruptionKind::HeaderClobber => self.config.heap_header_clobber_rate,
                CorruptionKind::StrayWrite => self.config.heap_stray_write_rate,
            };
            if !self.roll(rate) {
                continue;
            }
            let seed = self.next_u64();
            if let Some(planted) = heap.plant_corruption(kind, seed) {
                match kind {
                    CorruptionKind::BitFlip => self.injected.heap_bit_flips += 1,
                    CorruptionKind::HeaderClobber => self.injected.heap_header_clobbers += 1,
                    CorruptionKind::StrayWrite => self.injected.heap_stray_writes += 1,
                }
                return Some(planted);
            }
        }
        None
    }

    /// Clobbers characters of serialized profile text (disk corruption).
    pub fn corrupt_profile_text(&mut self, text: &mut String) {
        if self.config.profile_corrupt_rate == 0.0 {
            return;
        }
        let rate = self.config.profile_corrupt_rate;
        let mut corrupted = 0;
        let out: String = text
            .chars()
            .map(|c| {
                if c != '\n' && self.roll(rate) {
                    corrupted += 1;
                    '\u{FFFD}'
                } else {
                    c
                }
            })
            .collect();
        self.injected.profile_chars_corrupted += corrupted;
        *text = out;
    }
}

/// A [`HeapDumper`] wrapper that injects capture failures and truncation.
///
/// Failure is decided *before* delegating to the inner dumper, so a failed
/// attempt does not clear soft-dirty bits — exactly like a CRIU dump that
/// died before writing its image: the next attempt still sees every page the
/// failed one would have captured.
pub struct FaultyDumper {
    inner: Box<dyn HeapDumper>,
    injector: Rc<RefCell<FaultInjector>>,
    seq_guess: u32,
}

impl FaultyDumper {
    /// Wraps `inner`, drawing faults from `injector`.
    pub fn new(inner: Box<dyn HeapDumper>, injector: Rc<RefCell<FaultInjector>>) -> Self {
        FaultyDumper {
            inner,
            injector,
            seq_guess: 0,
        }
    }
}

impl std::fmt::Debug for FaultyDumper {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultyDumper")
            .field("inner", &self.inner.name())
            .finish_non_exhaustive()
    }
}

impl HeapDumper for FaultyDumper {
    fn name(&self) -> &'static str {
        "faulty-dumper"
    }

    fn snapshot(&mut self, heap: &mut Heap, now: SimTime) -> Result<Snapshot, SnapshotError> {
        {
            let mut inj = self.injector.borrow_mut();
            let rate = inj.config.snapshot_failure_rate;
            if inj.roll(rate) {
                inj.injected.snapshot_failures += 1;
                return Err(SnapshotError {
                    seq: self.seq_guess,
                    reason: "injected capture failure".to_string(),
                });
            }
        }
        let snap = self.inner.snapshot(heap, now)?;
        self.seq_guess = snap.seq + 1;

        let mut inj = self.injector.borrow_mut();
        let truncation_rate = inj.config.snapshot_truncation_rate;
        let truncate = inj.roll(truncation_rate);
        if !truncate {
            return Ok(snap);
        }
        inj.injected.snapshots_truncated += 1;
        let keep_rate = 1.0 - inj.config.truncated_fraction;
        let mut kept: IdHashSet<IdentityHash> = IdHashSet::default();
        let mut lost = 0u64;
        for &hash in snap.hashes() {
            if inj.roll(keep_rate) {
                kept.insert(hash);
            } else {
                lost += 1;
            }
        }
        inj.injected.hashes_lost += lost;
        Ok(Snapshot::new(
            snap.seq,
            snap.at,
            kept,
            snap.size_bytes,
            snap.capture_time,
        ))
    }
}

/// A [`JournalMedia`] wrapper that injects disk faults between the session
/// journal and the real storage — the `DiskFaultInjector` arm of the chaos
/// suite.
///
/// Fault semantics, chosen so every fault class maps to a *detectable*
/// journal defect:
///
/// * **Transient `EIO`** ([`FaultConfig::io_error_rate`], on append, sync,
///   and rename) fires *before* any bytes move, so the writer's retry is
///   safe and complete. Detected immediately (the error is returned).
/// * **Short write** ([`FaultConfig::io_short_write_rate`]) silently writes
///   a strict prefix of an append → a torn frame, detected by length/CRC at
///   recovery.
/// * **Bit flip** ([`FaultConfig::io_bit_flip_rate`]) flips one bit of an
///   append → detected by the per-frame CRC (CRC-32 catches all single-bit
///   errors).
/// * **Torn rename** ([`FaultConfig::io_torn_rename_rate`]) removes the
///   source instead of renaming it — the crash window between unlink and
///   link — leaving a missing segment, detected as a numbering gap (or an
///   absent commit, when the last segment is lost).
pub struct FaultyMedia {
    inner: Box<dyn JournalMedia>,
    injector: Rc<RefCell<FaultInjector>>,
}

impl FaultyMedia {
    /// Wraps `inner`, drawing faults from `injector`.
    pub fn new(inner: Box<dyn JournalMedia>, injector: Rc<RefCell<FaultInjector>>) -> Self {
        FaultyMedia { inner, injector }
    }

    fn transient(&mut self, op: &'static str) -> io::Result<()> {
        let mut inj = self.injector.borrow_mut();
        let rate = inj.config.io_error_rate;
        if inj.roll(rate) {
            inj.injected.io_errors += 1;
            return Err(io::Error::new(
                io::ErrorKind::Interrupted,
                format!("injected transient I/O error during {op}"),
            ));
        }
        Ok(())
    }
}

impl std::fmt::Debug for FaultyMedia {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultyMedia").finish_non_exhaustive()
    }
}

impl JournalMedia for FaultyMedia {
    fn append(&mut self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.transient("append")?;
        let mut inj = self.injector.borrow_mut();
        let short_rate = inj.config.io_short_write_rate;
        if bytes.len() > 1 && inj.roll(short_rate) {
            inj.injected.io_short_writes += 1;
            let keep = 1 + (inj.next_u64() as usize % (bytes.len() - 1));
            drop(inj);
            return self.inner.append(path, &bytes[..keep]);
        }
        let flip_rate = inj.config.io_bit_flip_rate;
        if !bytes.is_empty() && inj.roll(flip_rate) {
            inj.injected.io_bit_flips += 1;
            let bit = inj.next_u64() as usize % (bytes.len() * 8);
            drop(inj);
            let mut garbled = bytes.to_vec();
            garbled[bit / 8] ^= 1 << (bit % 8);
            return self.inner.append(path, &garbled);
        }
        drop(inj);
        self.inner.append(path, bytes)
    }

    fn sync(&mut self, path: &Path) -> io::Result<()> {
        self.transient("sync")?;
        self.inner.sync(path)
    }

    fn rename(&mut self, from: &Path, to: &Path) -> io::Result<()> {
        self.transient("rename")?;
        let mut inj = self.injector.borrow_mut();
        let torn_rate = inj.config.io_torn_rename_rate;
        if inj.roll(torn_rate) {
            inj.injected.io_torn_renames += 1;
            drop(inj);
            // The crash landed between unlink and link: the file is gone.
            return self.inner.remove(from);
        }
        drop(inj);
        self.inner.rename(from, to)
    }

    fn read(&mut self, path: &Path) -> io::Result<Vec<u8>> {
        self.inner.read(path)
    }

    fn list(&mut self, dir: &Path) -> io::Result<Vec<String>> {
        self.inner.list(dir)
    }

    fn truncate(&mut self, path: &Path, len: u64) -> io::Result<()> {
        self.inner.truncate(path, len)
    }

    fn remove(&mut self, path: &Path) -> io::Result<()> {
        self.inner.remove(path)
    }

    fn create_dir_all(&mut self, dir: &Path) -> io::Result<()> {
        self.inner.create_dir_all(dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polm2_heap::{ObjectId, SiteId};

    fn event(line: u32) -> AllocEvent {
        AllocEvent {
            trace: vec![TraceFrame {
                class_idx: 0,
                method_idx: 0,
                line,
            }],
            object: ObjectId::new(u64::from(line)),
            hash: IdentityHash::of(ObjectId::new(u64::from(line))),
            site: SiteId::new(0),
            at: SimTime::ZERO,
        }
    }

    #[test]
    fn inert_config_never_mutates() {
        let mut inj = FaultInjector::new(FaultConfig::default());
        let mut events: Vec<_> = (0..100).map(event).collect();
        let before = events.clone();
        inj.mutate_events(&mut events);
        assert_eq!(events, before);
        let mut text = "polm2-profile v1\n".to_string();
        inj.corrupt_profile_text(&mut text);
        assert_eq!(text, "polm2-profile v1\n");
        assert_eq!(inj.injected(), InjectedFaults::default());
        assert!(FaultConfig::default().is_inert());
        assert!(!FaultConfig::all_at(0.1, 7).is_inert());
    }

    #[test]
    fn same_seed_same_faults() {
        let config = FaultConfig::all_at(0.3, 42);
        let run = |config| {
            let mut inj = FaultInjector::new(config);
            let mut events: Vec<_> = (0..200).map(event).collect();
            inj.mutate_events(&mut events);
            (events, inj.injected())
        };
        let (a, ia) = run(config);
        let (b, ib) = run(config);
        assert_eq!(a, b);
        assert_eq!(ia, ib);
        let (c, _) = run(FaultConfig { seed: 43, ..config });
        assert_ne!(a, c, "a different seed must produce a different stream");
    }

    #[test]
    fn drops_and_duplicates_are_tallied() {
        let config = FaultConfig {
            seed: 1,
            record_drop_rate: 0.25,
            record_duplicate_rate: 0.25,
            ..FaultConfig::default()
        };
        let mut inj = FaultInjector::new(config);
        let mut events: Vec<_> = (0..400).map(event).collect();
        inj.mutate_events(&mut events);
        let injected = inj.injected();
        assert!(injected.records_dropped > 0);
        assert!(injected.records_duplicated > 0);
        assert_eq!(
            events.len() as u64,
            400 - injected.records_dropped + injected.records_duplicated
        );
    }

    #[test]
    fn corrupted_events_never_resolve_in_any_program() {
        let config = FaultConfig {
            seed: 5,
            record_corrupt_rate: 1.0,
            ..FaultConfig::default()
        };
        let mut inj = FaultInjector::new(config);
        let mut events: Vec<_> = (0..50).map(event).collect();
        inj.mutate_events(&mut events);
        assert_eq!(inj.injected().records_corrupted, 50);
        for e in &events {
            let detectable = e.trace.is_empty()
                || e.trace
                    .iter()
                    .any(|f| f.class_idx == u16::MAX || f.method_idx == u16::MAX);
            assert!(
                detectable,
                "corruption must be structurally detectable: {:?}",
                e.trace
            );
        }
    }

    /// In-memory [`JournalMedia`] for exercising [`FaultyMedia`] without
    /// touching the real filesystem.
    #[derive(Default)]
    struct MemMedia {
        files: std::collections::BTreeMap<std::path::PathBuf, Vec<u8>>,
    }

    impl JournalMedia for MemMedia {
        fn append(&mut self, path: &Path, bytes: &[u8]) -> io::Result<()> {
            self.files
                .entry(path.to_path_buf())
                .or_default()
                .extend_from_slice(bytes);
            Ok(())
        }
        fn sync(&mut self, _path: &Path) -> io::Result<()> {
            Ok(())
        }
        fn rename(&mut self, from: &Path, to: &Path) -> io::Result<()> {
            let bytes = self
                .files
                .remove(from)
                .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))?;
            self.files.insert(to.to_path_buf(), bytes);
            Ok(())
        }
        fn read(&mut self, path: &Path) -> io::Result<Vec<u8>> {
            self.files
                .get(path)
                .cloned()
                .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))
        }
        fn list(&mut self, dir: &Path) -> io::Result<Vec<String>> {
            Ok(self
                .files
                .keys()
                .filter(|p| p.parent() == Some(dir))
                .filter_map(|p| p.file_name().and_then(|n| n.to_str()).map(String::from))
                .collect())
        }
        fn truncate(&mut self, path: &Path, len: u64) -> io::Result<()> {
            match self.files.get_mut(path) {
                Some(bytes) => {
                    bytes.truncate(len as usize);
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "no such file")),
            }
        }
        fn remove(&mut self, path: &Path) -> io::Result<()> {
            self.files
                .remove(path)
                .map(|_| ())
                .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))
        }
        fn create_dir_all(&mut self, _dir: &Path) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn faulty_media_injects_every_disk_fault_class_deterministically() {
        let run = |seed: u64| {
            let injector = Rc::new(RefCell::new(FaultInjector::new(FaultConfig::disk_only_at(
                0.3, seed,
            ))));
            let mut media = FaultyMedia::new(Box::<MemMedia>::default(), Rc::clone(&injector));
            let dir = Path::new("/mem");
            let mut errors = 0u64;
            for i in 0..200u32 {
                let from = dir.join(format!("f{i}.tmp"));
                if media.append(&from, &[0xAB; 64]).is_err() {
                    errors += 1;
                    continue;
                }
                let _ = media.sync(&from);
                let _ = media.rename(&from, &dir.join(format!("f{i}")));
            }
            let injected = injector.borrow().injected();
            (errors, injected)
        };
        let (errors, injected) = run(11);
        assert!(errors > 0, "append-time EIOs must fire");
        assert!(injected.io_errors >= errors, "sync/rename EIOs also count");
        assert!(injected.io_short_writes > 0);
        assert!(injected.io_bit_flips > 0);
        assert!(injected.io_torn_renames > 0);
        assert_eq!(run(11), (errors, injected), "same seed, same disk faults");
        assert_ne!(run(12).1, injected, "different seed, different faults");
    }

    #[test]
    fn profile_corruption_clobbers_but_keeps_line_structure() {
        let config = FaultConfig {
            seed: 9,
            profile_corrupt_rate: 0.2,
            ..FaultConfig::default()
        };
        let mut inj = FaultInjector::new(config);
        let original = "polm2-profile v1\nsite A b 1 gen 2\ncall C d 3 gen 2\n".to_string();
        let mut text = original.clone();
        inj.corrupt_profile_text(&mut text);
        assert_ne!(text, original);
        assert_eq!(
            inj.injected().profile_chars_corrupted,
            text.matches('\u{FFFD}').count() as u64
        );
        assert_eq!(
            text.lines().count(),
            original.lines().count(),
            "newlines survive"
        );
    }
}
