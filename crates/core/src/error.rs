//! The pipeline's unified error taxonomy.
//!
//! Every fallible step of the two POLM2 phases — snapshot capture, profile
//! I/O and parsing, runtime execution, record extraction — surfaces here as
//! one typed error. The profiling pipeline never panics on bad input: faults
//! either become a [`PipelineError`] or are absorbed and counted (see
//! `polm2_metrics::FaultCounters`).

use std::error::Error;
use std::fmt;

use polm2_runtime::RuntimeError;
use polm2_snapshot::{JournalError, SnapshotError};

use crate::profile::{ProfileError, ProfileParseError};

/// Any failure of the profiling or production pipeline.
#[derive(Debug)]
#[non_exhaustive]
pub enum PipelineError {
    /// A snapshot could not be captured, even after retrying.
    Snapshot {
        /// Capture attempts made (1 = no retries).
        attempts: u32,
        /// The last capture failure.
        source: SnapshotError,
    },
    /// Loading, parsing, or validating an allocation profile failed.
    Profile(ProfileError),
    /// The simulated runtime reported an error.
    Runtime(RuntimeError),
    /// The Recorder's records could not be extracted because its load-time
    /// agent still holds a reference (a JVM using it is still alive).
    RecorderBusy,
    /// The session journal could not be created, recovered, or replayed.
    Journal(JournalError),
    /// A supervised run exceeded its watchdog deadline: the driver observed
    /// this many consecutive operations with no simulated-clock progress.
    /// The fleet supervisor quarantines the tenant instead of waiting
    /// forever on a stalled runtime.
    Deadline {
        /// Consecutive operations without progress when the watchdog fired.
        silent_ops: u64,
    },
    /// An internal invariant the pipeline relies on was violated. These used
    /// to be panics; surfacing them as a typed error keeps a poisoned tenant
    /// inside the fleet supervisor instead of unwinding through it.
    Internal(String),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Snapshot { attempts, source } => {
                write!(
                    f,
                    "snapshot capture failed after {attempts} attempt(s): {source}"
                )
            }
            PipelineError::Profile(e) => write!(f, "profile error: {e}"),
            PipelineError::Runtime(e) => write!(f, "runtime error: {e}"),
            PipelineError::RecorderBusy => {
                write!(f, "recorder agent still installed in a live runtime")
            }
            PipelineError::Journal(e) => write!(f, "journal error: {e}"),
            PipelineError::Deadline { silent_ops } => write!(
                f,
                "watchdog deadline exceeded: {silent_ops} consecutive operations \
                 made no simulated-clock progress"
            ),
            PipelineError::Internal(reason) => {
                write!(f, "internal invariant violated: {reason}")
            }
        }
    }
}

impl Error for PipelineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PipelineError::Snapshot { source, .. } => Some(source),
            PipelineError::Profile(e) => Some(e),
            PipelineError::Runtime(e) => Some(e),
            PipelineError::RecorderBusy => None,
            PipelineError::Journal(e) => Some(e),
            PipelineError::Deadline { .. } => None,
            PipelineError::Internal(_) => None,
        }
    }
}

impl From<JournalError> for PipelineError {
    fn from(e: JournalError) -> Self {
        PipelineError::Journal(e)
    }
}

impl From<RuntimeError> for PipelineError {
    fn from(e: RuntimeError) -> Self {
        PipelineError::Runtime(e)
    }
}

impl From<ProfileError> for PipelineError {
    fn from(e: ProfileError) -> Self {
        PipelineError::Profile(e)
    }
}

impl From<ProfileParseError> for PipelineError {
    fn from(e: ProfileParseError) -> Self {
        PipelineError::Profile(ProfileError::Parse(e))
    }
}

impl From<SnapshotError> for PipelineError {
    fn from(source: SnapshotError) -> Self {
        PipelineError::Snapshot {
            attempts: 1,
            source,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source_chain() {
        let e = PipelineError::from(SnapshotError {
            seq: 3,
            reason: "rpc timeout".into(),
        });
        assert!(e.to_string().contains("1 attempt"));
        assert!(e.source().unwrap().to_string().contains("snapshot 3"));

        let e = PipelineError::from(ProfileParseError {
            line: 2,
            message: "bad".into(),
        });
        assert!(matches!(e, PipelineError::Profile(ProfileError::Parse(_))));
        assert!(e.source().is_some());

        assert!(PipelineError::RecorderBusy.source().is_none());
    }
}
