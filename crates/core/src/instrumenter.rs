//! The Instrumenter: applies an allocation profile at class-load time
//! (paper §3.4).

use std::cell::RefCell;
use std::rc::Rc;

use polm2_runtime::{ClassDef, ClassTransformer, CodeLoc, Instr, Program};

use crate::profile::ProfileValidation;
use crate::AllocationProfile;

/// Counters describing what the Instrumenter actually rewrote (Table 1's
/// POLM2 columns come from these).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InstrumentationStats {
    /// Allocation sites `@Gen`-annotated.
    pub annotated_sites: u64,
    /// `setGeneration`/restore pairs inserted.
    pub gen_call_pairs: u64,
}

/// The load-time agent of the production phase: rewrites application
/// bytecode according to an [`AllocationProfile`].
///
/// For every `site` entry it flips the allocation's `@Gen` flag (and, for
/// `local` entries, brackets the allocation with `setGeneration`/restore);
/// for every `call` entry it brackets the call instruction. The program
/// source is never touched — only the in-memory class definitions during
/// loading, matching the paper's "no source code access" property.
#[derive(Debug)]
pub struct Instrumenter {
    profile: AllocationProfile,
    stale: ProfileValidation,
    stats: Rc<RefCell<InstrumentationStats>>,
}

impl Instrumenter {
    /// Creates an instrumenter for `profile`, trusting it to match the
    /// program it will be applied to. Use [`checked`](Instrumenter::checked)
    /// when the profile comes from disk or from a different build of the
    /// application.
    pub fn new(profile: AllocationProfile) -> Self {
        Instrumenter {
            profile,
            stale: ProfileValidation::default(),
            stats: Rc::new(RefCell::new(InstrumentationStats::default())),
        }
    }

    /// Creates an instrumenter that applies only the entries of `profile`
    /// that resolve in `program`; stale entries are skipped and reported via
    /// [`stale`](Instrumenter::stale). Skipping is safe: the affected
    /// allocations simply stay in the young generation.
    pub fn checked(profile: &AllocationProfile, program: &Program) -> Self {
        let (valid, stale) = profile.split_valid(program);
        Instrumenter {
            profile: valid,
            stale,
            stats: Rc::new(RefCell::new(InstrumentationStats::default())),
        }
    }

    /// Entries dropped because they did not resolve in the program (empty
    /// for instrumenters built with [`new`](Instrumenter::new)).
    pub fn stale(&self) -> &ProfileValidation {
        &self.stale
    }

    /// The load-time agent to install in the JVM builder.
    pub fn agent(&self) -> Box<dyn ClassTransformer> {
        Box::new(InstrumenterAgent {
            profile: self.profile.clone(),
            stats: Rc::clone(&self.stats),
        })
    }

    /// What has been rewritten so far.
    pub fn stats(&self) -> InstrumentationStats {
        *self.stats.borrow()
    }

    /// The profile being applied.
    pub fn profile(&self) -> &AllocationProfile {
        &self.profile
    }
}

struct InstrumenterAgent {
    profile: AllocationProfile,
    stats: Rc<RefCell<InstrumentationStats>>,
}

impl ClassTransformer for InstrumenterAgent {
    fn name(&self) -> &str {
        "polm2-instrumenter"
    }

    fn transform(&mut self, class: &mut ClassDef) {
        // Profile entries are keyed (class, method, line): a class the
        // profile never mentions cannot match any lookup, so skip its
        // method bodies entirely — most loaded classes in a big application
        // have no profile entries at all.
        if !self.profile.mentions_class(&class.name) {
            return;
        }
        let class_name = class.name.clone();
        let mut stats = self.stats.borrow_mut();
        for method in &mut class.methods {
            let method_name = method.name.clone();
            rewrite_block(
                &mut method.body,
                &class_name,
                &method_name,
                &self.profile,
                &mut stats,
            );
        }
    }
}

fn rewrite_block(
    block: &mut Vec<Instr>,
    class: &str,
    method: &str,
    profile: &AllocationProfile,
    stats: &mut InstrumentationStats,
) {
    let mut out = Vec::with_capacity(block.len());
    for mut instr in block.drain(..) {
        match &mut instr {
            Instr::Branch {
                then_block,
                else_block,
                ..
            } => {
                rewrite_block(then_block, class, method, profile, stats);
                rewrite_block(else_block, class, method, profile, stats);
                out.push(instr);
            }
            Instr::Repeat { body, .. } => {
                rewrite_block(body, class, method, profile, stats);
                out.push(instr);
            }
            Instr::Alloc {
                line, pretenure, ..
            } => {
                let loc = CodeLoc::new(class, method, *line);
                if let Some(site) = profile.site_at(&loc) {
                    *pretenure = true;
                    stats.annotated_sites += 1;
                    if site.local {
                        let line = *line;
                        out.push(Instr::SetGen {
                            gen: site.gen,
                            line,
                        });
                        out.push(instr);
                        out.push(Instr::RestoreGen { line });
                        stats.gen_call_pairs += 1;
                        continue;
                    }
                }
                out.push(instr);
            }
            Instr::Call { line, .. } => {
                let loc = CodeLoc::new(class, method, *line);
                if let Some(call) = profile.gen_call_at(&loc) {
                    let line = *line;
                    out.push(Instr::SetGen {
                        gen: call.gen,
                        line,
                    });
                    out.push(instr);
                    out.push(Instr::RestoreGen { line });
                    stats.gen_call_pairs += 1;
                } else {
                    out.push(instr);
                }
            }
            _ => out.push(instr),
        }
    }
    *block = out;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GenCall, PretenuredSite};
    use polm2_heap::GenId;
    use polm2_runtime::{MethodDef, Program, SizeSpec};

    fn program() -> Program {
        let mut p = Program::new();
        p.add_class(
            ClassDef::new("Store")
                .with_method(MethodDef::new("put").push(Instr::call("Cell", "create", 10)))
                .with_method(MethodDef::new("loop").push(Instr::Repeat {
                    count: polm2_runtime::CountSpec::Fixed(2),
                    body: vec![Instr::call("Cell", "create", 21)],
                    line: 20,
                })),
        );
        p.add_class(ClassDef::new("Cell").with_method(
            MethodDef::new("create").push(Instr::alloc("Cell", SizeSpec::Fixed(64), 5)),
        ));
        p
    }

    fn profile() -> AllocationProfile {
        let mut prof = AllocationProfile::new();
        prof.add_site(PretenuredSite {
            loc: CodeLoc::new("Cell", "create", 5),
            gen: GenId::new(2),
            local: false,
        });
        prof.add_gen_call(GenCall {
            at: CodeLoc::new("Store", "put", 10),
            gen: GenId::new(2),
        });
        prof
    }

    #[test]
    fn annotates_sites_and_wraps_calls() {
        let mut p = program();
        let inst = Instrumenter::new(profile());
        let mut agent = inst.agent();
        for class in p.classes_mut() {
            agent.transform(class);
        }
        // The allocation site is @Gen-flagged.
        let body = &p.class("Cell").unwrap().method("create").unwrap().body;
        assert!(matches!(
            body[0],
            Instr::Alloc {
                pretenure: true,
                ..
            }
        ));
        // The call in Store.put is wrapped.
        let body = &p.class("Store").unwrap().method("put").unwrap().body;
        assert!(matches!(body[0], Instr::SetGen { gen, .. } if gen == GenId::new(2)));
        assert!(matches!(body[1], Instr::Call { .. }));
        assert!(matches!(body[2], Instr::RestoreGen { .. }));
        // The other call site (line 21, inside the loop) is untouched.
        let body = &p.class("Store").unwrap().method("loop").unwrap().body;
        if let Instr::Repeat { body, .. } = &body[0] {
            assert_eq!(body.len(), 1);
            assert!(matches!(body[0], Instr::Call { .. }));
        } else {
            panic!("loop preserved");
        }
        let stats = inst.stats();
        assert_eq!(stats.annotated_sites, 1);
        assert_eq!(stats.gen_call_pairs, 1);
    }

    #[test]
    fn local_sites_get_bracketed_in_place() {
        let mut prof = AllocationProfile::new();
        prof.add_site(PretenuredSite {
            loc: CodeLoc::new("Cell", "create", 5),
            gen: GenId::new(3),
            local: true,
        });
        let mut p = program();
        let inst = Instrumenter::new(prof);
        let mut agent = inst.agent();
        for class in p.classes_mut() {
            agent.transform(class);
        }
        let body = &p.class("Cell").unwrap().method("create").unwrap().body;
        assert!(matches!(body[0], Instr::SetGen { gen, .. } if gen == GenId::new(3)));
        assert!(matches!(
            body[1],
            Instr::Alloc {
                pretenure: true,
                ..
            }
        ));
        assert!(matches!(body[2], Instr::RestoreGen { .. }));
        assert_eq!(inst.stats().gen_call_pairs, 1);
    }

    #[test]
    fn empty_profile_rewrites_nothing() {
        let mut p = program();
        let before = p.clone();
        let inst = Instrumenter::new(AllocationProfile::new());
        let mut agent = inst.agent();
        for class in p.classes_mut() {
            agent.transform(class);
        }
        assert_eq!(p, before);
        assert_eq!(inst.stats(), InstrumentationStats::default());
    }

    #[test]
    fn checked_skips_stale_entries_and_applies_the_rest() {
        let mut prof = profile();
        prof.add_site(PretenuredSite {
            loc: CodeLoc::new("Removed", "method", 7),
            gen: GenId::new(2),
            local: true,
        });
        prof.add_gen_call(GenCall {
            at: CodeLoc::new("Store", "put", 77),
            gen: GenId::new(2),
        });

        let mut p = program();
        let inst = Instrumenter::checked(&prof, &p);
        assert_eq!(inst.stale().stale_sites.len(), 1);
        assert_eq!(inst.stale().stale_gen_calls.len(), 1);
        let mut agent = inst.agent();
        for class in p.classes_mut() {
            agent.transform(class);
        }
        // The valid entries still applied.
        let body = &p.class("Cell").unwrap().method("create").unwrap().body;
        assert!(matches!(
            body[0],
            Instr::Alloc {
                pretenure: true,
                ..
            }
        ));
        assert_eq!(inst.stats().annotated_sites, 1);
        assert_eq!(inst.stats().gen_call_pairs, 1);
        // A trusted instrumenter reports nothing stale.
        assert!(Instrumenter::new(profile()).stale().is_clean());
    }

    #[test]
    fn nested_call_sites_are_found() {
        let mut prof = AllocationProfile::new();
        prof.add_gen_call(GenCall {
            at: CodeLoc::new("Store", "loop", 21),
            gen: GenId::new(2),
        });
        let mut p = program();
        let inst = Instrumenter::new(prof);
        let mut agent = inst.agent();
        for class in p.classes_mut() {
            agent.transform(class);
        }
        let body = &p.class("Store").unwrap().method("loop").unwrap().body;
        if let Instr::Repeat { body, .. } = &body[0] {
            assert!(matches!(body[0], Instr::SetGen { .. }));
            assert!(matches!(body[2], Instr::RestoreGen { .. }));
        } else {
            panic!("loop preserved");
        }
    }
}
