//! The session layer of the `polm2-journal v1` format: what the profiling
//! session writes into the journal, and how a journal replays back into
//! Recorder and Dumper state.
//!
//! The byte-level format — segments, frames, CRCs, recovery — lives in
//! [`polm2_snapshot::journal`]; this module defines the *frame kinds* and
//! their payloads:
//!
//! | kind | name          | payload                                              |
//! |-----:|---------------|------------------------------------------------------|
//! | 1    | session       | workload name, seed, duration µs, snapshot stride    |
//! | 2    | trace-def     | trace id + its frames (class, method, line)          |
//! | 3    | alloc-batch   | per-trace runs of identity hashes, columnar          |
//! | 4    | snapshot      | seq, times, size + delta columns vs. previous        |
//! | 5    | commit        | totals + fault counters (clean-shutdown record)      |
//!
//! # What gets journaled, and why replay is lossless
//!
//! The Recorder's in-memory state is columnar: interned trace definitions
//! (dense [`TraceId`]s in first-seen order) and one identity-hash stream per
//! trace. [`SessionJournal`] streams exactly that — trace definitions the
//! first time each trace appears, then batches of per-trace hash runs
//! straight from the stream tails. Because trace ids and frame symbols
//! depend only on first-seen order, replaying the definitions in journal
//! order through [`AllocationRecords::trace_id_for`] reassigns the identical
//! ids, and replaying the hash runs through
//! [`AllocationRecords::record_traced`] rebuilds byte-identical streams.
//!
//! Snapshots are journaled as *delta columns* — the sorted added/removed
//! hash sets each [`SnapshotSeries`] push already computed for its columnar
//! index (closing the ROADMAP item: serialization streams out of push order,
//! never re-diffing, never re-materializing a full column). Replay folds the
//! deltas back together, so the reconstructed series is value-identical to
//! the captured one.
//!
//! The commit frame records the totals the session saw at shutdown; replay
//! cross-checks them, so a journal that replays cleanly *and* matches its
//! commit record is a proven-complete profile input.
//!
//! # Degradation
//!
//! Journaling is strictly best-effort: transient I/O errors are retried with
//! exponential backoff charged to the simulated clock, and when the retry
//! budget runs out the journal goes *dead* — no further frames are written,
//! the loss is counted in [`FaultCounters`], and the in-memory session
//! continues unharmed. A dead journal simply has no commit record, which
//! resume treats like any crash.

use polm2_heap::{IdHashSet, IdentityHash};
use polm2_metrics::{FaultCounters, SimDuration, SimTime};
use polm2_runtime::TraceFrame;
use polm2_snapshot::journal::{put_str, put_u16, put_u32, put_u64, WireReader};
use polm2_snapshot::{Frame, JournalError, JournalWriter, Snapshot, SnapshotSeries};

use crate::recorder::{AllocationRecords, TraceId};

/// Frame kind: session header (first frame of every journal).
pub const KIND_SESSION: u8 = 1;
/// Frame kind: one interned stack-trace definition.
pub const KIND_TRACE_DEF: u8 = 2;
/// Frame kind: a columnar batch of allocation records.
pub const KIND_ALLOC_BATCH: u8 = 3;
/// Frame kind: one snapshot, delta encoded against its predecessor.
pub const KIND_SNAPSHOT: u8 = 4;
/// Frame kind: the clean-shutdown commit record.
pub const KIND_COMMIT: u8 = 5;

/// Default number of pending allocation records that triggers a batch frame.
pub const DEFAULT_FLUSH_THRESHOLD: u64 = 4096;

/// What a profiling session is, for the journal: enough to re-execute it
/// deterministically if the journal turns out to be torn.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionMeta {
    /// Workload name (the registry key the runner resolves).
    pub workload: String,
    /// Workload seed; same seed, same event stream, same journal bytes.
    pub seed: u64,
    /// Profiling duration on the simulated clock.
    pub duration: SimDuration,
    /// Snapshot stride (GC cycles per snapshot).
    pub every_n_cycles: u32,
}

impl SessionMeta {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_str(&mut out, &self.workload);
        put_u64(&mut out, self.seed);
        put_u64(&mut out, self.duration.as_micros());
        put_u32(&mut out, self.every_n_cycles);
        out
    }

    fn decode(payload: &[u8]) -> Result<Self, JournalError> {
        let mut r = WireReader::new(payload);
        let meta = SessionMeta {
            workload: r.str()?,
            seed: r.u64()?,
            duration: SimDuration::from_micros(r.u64()?),
            every_n_cycles: r.u32()?,
        };
        r.expect_exhausted()?;
        Ok(meta)
    }
}

/// What the commit record claimed at clean shutdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitSummary {
    /// Total allocation records the session had journaled.
    pub total_records: u64,
    /// Distinct traces the session had interned.
    pub trace_count: u32,
    /// Snapshots the session had captured.
    pub snapshot_count: u32,
    /// The session's fault/recovery ledger at commit time.
    pub counters: FaultCounters,
}

impl CommitSummary {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u64(&mut out, self.total_records);
        put_u32(&mut out, self.trace_count);
        put_u32(&mut out, self.snapshot_count);
        let entries = self.counters.entries();
        put_u16(&mut out, entries.len() as u16);
        for (name, value) in entries {
            put_str(&mut out, name);
            put_u64(&mut out, value);
        }
        out
    }

    fn decode(payload: &[u8]) -> Result<Self, JournalError> {
        let mut r = WireReader::new(payload);
        let total_records = r.u64()?;
        let trace_count = r.u32()?;
        let snapshot_count = r.u32()?;
        let n = r.u16()?;
        let mut counters = FaultCounters::new();
        for _ in 0..n {
            let name = r.str()?;
            let value = r.u64()?;
            // Unknown names are tolerated: a newer writer may count more.
            counters.set_by_name(&name, value);
        }
        r.expect_exhausted()?;
        Ok(CommitSummary {
            total_records,
            trace_count,
            snapshot_count,
            counters,
        })
    }
}

fn encode_trace_def(id: TraceId, frames: &[TraceFrame]) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, id.raw());
    put_u16(&mut out, frames.len() as u16);
    for f in frames {
        put_u16(&mut out, f.class_idx);
        put_u16(&mut out, f.method_idx);
        put_u32(&mut out, f.line);
    }
    out
}

fn decode_trace_def(payload: &[u8]) -> Result<(u32, Vec<TraceFrame>), JournalError> {
    let mut r = WireReader::new(payload);
    let id = r.u32()?;
    let n = r.u16()?;
    let mut frames = Vec::with_capacity(n as usize);
    for _ in 0..n {
        frames.push(TraceFrame {
            class_idx: r.u16()?,
            method_idx: r.u16()?,
            line: r.u32()?,
        });
    }
    r.expect_exhausted()?;
    Ok((id, frames))
}

fn encode_snapshot(snap: &Snapshot, added: &[u64], removed: &[u64]) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, snap.seq);
    put_u64(&mut out, snap.at.as_micros());
    put_u64(&mut out, snap.size_bytes);
    put_u64(&mut out, snap.capture_time.as_micros());
    put_u32(&mut out, added.len() as u32);
    put_u32(&mut out, removed.len() as u32);
    // Identity hashes are 32-bit values; the columns store them widened.
    for &h in added {
        put_u32(&mut out, h as u32);
    }
    for &h in removed {
        put_u32(&mut out, h as u32);
    }
    out
}

/// Appends one profiling session's state changes into a [`JournalWriter`]
/// as it runs: trace definitions on first sight, allocation batches from the
/// Recorder's stream tails, snapshot deltas from push order, and finally the
/// commit record.
pub struct SessionJournal {
    writer: JournalWriter,
    retry: JournalRetryPolicy,
    flush_threshold: u64,
    /// Trace definitions journaled so far (== next TraceId to journal).
    trace_cursor: usize,
    /// Per-trace stream lengths journaled so far.
    stream_cursors: Vec<usize>,
    /// Total records journaled (cheap pending-work check against
    /// [`AllocationRecords::total_records`]).
    records_journaled: u64,
    /// Snapshots journaled so far.
    snapshot_cursor: usize,
    /// Set when a frame was abandoned: the journal is no longer a faithful
    /// prefix of the session, so it stops growing (and never commits).
    dead: bool,
}

/// Retry policy for transient journal I/O errors, mirroring
/// [`RecoveryPolicy`](crate::RecoveryPolicy) for snapshots: bounded retries
/// with exponential backoff charged to the simulated clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalRetryPolicy {
    /// Retries after the first failed write.
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per retry.
    pub backoff: SimDuration,
}

impl Default for JournalRetryPolicy {
    fn default() -> Self {
        JournalRetryPolicy {
            max_retries: 2,
            backoff: SimDuration::from_millis(5),
        }
    }
}

impl std::fmt::Debug for SessionJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionJournal")
            .field("dir", &self.writer.dir())
            .field("records_journaled", &self.records_journaled)
            .field("dead", &self.dead)
            .finish_non_exhaustive()
    }
}

impl SessionJournal {
    /// Wraps a fresh [`JournalWriter`] and writes the session-header frame.
    ///
    /// # Errors
    ///
    /// [`JournalError`] if even the retried header write fails — a journal
    /// that cannot record *what session it is* is useless, so creation (and
    /// only creation) is fail-fast.
    pub fn create(
        writer: JournalWriter,
        meta: &SessionMeta,
        retry: JournalRetryPolicy,
        charge: &mut dyn FnMut(SimDuration),
    ) -> Result<Self, JournalError> {
        let mut journal = SessionJournal {
            writer,
            retry,
            flush_threshold: DEFAULT_FLUSH_THRESHOLD,
            trace_cursor: 0,
            stream_cursors: Vec::new(),
            records_journaled: 0,
            snapshot_cursor: 0,
            dead: false,
        };
        let mut scratch = FaultCounters::new();
        journal.append_retrying(KIND_SESSION, &meta.encode(), &mut scratch, charge)?;
        if journal.dead {
            return Err(JournalError::Replay {
                frame: 0,
                reason: "could not write the session header".to_string(),
            });
        }
        Ok(journal)
    }

    /// Overrides the batch-flush threshold (records pending before a batch
    /// frame is emitted). Tests use 0 to journal every drain.
    pub fn with_flush_threshold(mut self, threshold: u64) -> Self {
        self.flush_threshold = threshold;
        self
    }

    /// True once a frame was abandoned and journaling stopped.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// True once the commit record was durably written.
    pub fn is_committed(&self) -> bool {
        self.writer.is_committed()
    }

    /// Appends one frame with retry/backoff. On exhaustion the journal goes
    /// dead and the loss is counted — never an error to the session.
    ///
    /// # Errors
    ///
    /// Never, after construction; the `Result` exists for
    /// [`create`](SessionJournal::create)'s fail-fast header write.
    fn append_retrying(
        &mut self,
        kind: u8,
        payload: &[u8],
        counters: &mut FaultCounters,
        charge: &mut dyn FnMut(SimDuration),
    ) -> Result<(), JournalError> {
        if self.dead {
            return Ok(());
        }
        let mut backoff = self.retry.backoff;
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            let result = if kind == KIND_COMMIT {
                self.writer.commit(kind, payload)
            } else {
                self.writer.append(kind, payload)
            };
            match result {
                Ok(()) => return Ok(()),
                Err(e) if e.is_transient() => {
                    counters.journal_write_errors += 1;
                    if attempts > self.retry.max_retries {
                        counters.journal_frames_lost += 1;
                        self.dead = true;
                        return Ok(());
                    }
                    counters.journal_retries += 1;
                    // Wait the failure out on the simulated clock, like
                    // snapshot recovery.
                    charge(backoff);
                    backoff = backoff * 2;
                }
                Err(e) => {
                    counters.journal_frames_lost += 1;
                    self.dead = true;
                    return Err(e);
                }
            }
        }
    }

    /// Journals everything `records` holds beyond the journal's cursors —
    /// new trace definitions first, then one columnar batch of per-trace
    /// hash runs — but only once at least
    /// [the flush threshold](SessionJournal::with_flush_threshold) of
    /// records are pending. [`flush_records`](SessionJournal::flush_records)
    /// bypasses the threshold.
    pub fn sync_records(
        &mut self,
        records: &AllocationRecords,
        counters: &mut FaultCounters,
        charge: &mut dyn FnMut(SimDuration),
    ) {
        if self.dead || records.total_records() - self.records_journaled < self.flush_threshold {
            return;
        }
        self.flush_records(records, counters, charge);
    }

    /// Journals all pending trace definitions and allocation records
    /// unconditionally.
    pub fn flush_records(
        &mut self,
        records: &AllocationRecords,
        counters: &mut FaultCounters,
        charge: &mut dyn FnMut(SimDuration),
    ) {
        if self.dead {
            return;
        }
        // Trace definitions, first-seen order — replay re-interns them in
        // the same order and gets the same ids.
        for raw in self.trace_cursor as u32..records.trace_count() as u32 {
            let id = TraceId::from_raw(raw);
            let payload = encode_trace_def(id, &records.trace(id));
            let _ = self.append_retrying(KIND_TRACE_DEF, &payload, counters, charge);
            if self.dead {
                return;
            }
            self.trace_cursor += 1;
        }
        self.stream_cursors.resize(records.trace_count(), 0);

        // One batch frame holding every stream's new tail, columnar.
        let mut payload = Vec::new();
        let mut groups = 0u32;
        let mut new_records = 0u64;
        put_u32(&mut payload, 0); // group count, patched below
        for raw in 0..records.trace_count() as u32 {
            let id = TraceId::from_raw(raw);
            let stream = records.stream(id);
            let from = self.stream_cursors[raw as usize];
            if stream.len() == from {
                continue;
            }
            groups += 1;
            new_records += (stream.len() - from) as u64;
            put_u32(&mut payload, raw);
            put_u32(&mut payload, (stream.len() - from) as u32);
            for &hash in &stream[from..] {
                put_u32(&mut payload, hash.raw());
            }
        }
        if groups == 0 {
            return;
        }
        payload[..4].copy_from_slice(&groups.to_le_bytes());
        let _ = self.append_retrying(KIND_ALLOC_BATCH, &payload, counters, charge);
        if self.dead {
            return;
        }
        for raw in 0..records.trace_count() {
            self.stream_cursors[raw] = records.stream(TraceId::from_raw(raw as u32)).len();
        }
        self.records_journaled += new_records;
    }

    /// Journals every snapshot `series` holds beyond the journal's cursor,
    /// as delta frames streamed straight from the index's push-time diffs.
    /// Called right after each push, so "beyond the cursor" is normally
    /// exactly one snapshot — but the catch-up loop keeps the journal right
    /// even if a caller batches pushes.
    pub fn sync_snapshots(
        &mut self,
        series: &SnapshotSeries,
        counters: &mut FaultCounters,
        charge: &mut dyn FnMut(SimDuration),
    ) {
        if self.dead {
            return;
        }
        while self.snapshot_cursor < series.len() {
            let i = self.snapshot_cursor;
            let snap = &series.snapshots()[i];
            // The common case: the snapshot just pushed, and its delta is
            // sitting in the index — no re-diff. A series whose index has
            // fewer columns than snapshots (possible only through a foreign
            // constructor) falls through to the catch-up re-diff below
            // rather than asserting the invariant.
            let fresh_delta = if i + 1 == series.len() && series.index().len() == series.len() {
                series.index().last_delta()
            } else {
                None
            };
            let payload = if let Some((added, removed)) = fresh_delta {
                encode_snapshot(snap, added, removed)
            } else {
                // Catch-up: re-derive the delta for an older snapshot.
                let prev: &[u64] = if i == 0 {
                    &[]
                } else {
                    series.snapshots()[i - 1].sorted_hashes()
                };
                let (added, removed) = diff_sorted(prev, snap.sorted_hashes());
                encode_snapshot(snap, &added, &removed)
            };
            let _ = self.append_retrying(KIND_SNAPSHOT, &payload, counters, charge);
            if self.dead {
                return;
            }
            self.snapshot_cursor += 1;
        }
    }

    /// Flushes everything pending, then writes the commit record and seals
    /// the journal. A dead journal skips the commit (its absence is the
    /// signal that the journal is incomplete).
    pub fn commit(
        &mut self,
        records: &AllocationRecords,
        snapshots: &SnapshotSeries,
        counters: &mut FaultCounters,
        charge: &mut dyn FnMut(SimDuration),
    ) {
        self.flush_records(records, counters, charge);
        self.sync_snapshots(snapshots, counters, charge);
        if self.dead {
            return;
        }
        let summary = CommitSummary {
            total_records: records.total_records(),
            trace_count: records.trace_count() as u32,
            snapshot_count: snapshots.len() as u32,
            counters: *counters,
        };
        let _ = self.append_retrying(KIND_COMMIT, &summary.encode(), counters, charge);
    }
}

/// `(added, removed)` between two sorted columns (catch-up path only; the
/// steady state reads the index's push-time delta).
fn diff_sorted(prev: &[u64], cur: &[u64]) -> (Vec<u64>, Vec<u64>) {
    let mut added = Vec::new();
    let mut removed = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < prev.len() && j < cur.len() {
        match prev[i].cmp(&cur[j]) {
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Less => {
                removed.push(prev[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                added.push(cur[j]);
                j += 1;
            }
        }
    }
    removed.extend_from_slice(&prev[i..]);
    added.extend_from_slice(&cur[j..]);
    (added, removed)
}

/// A journal replayed back into session state.
#[derive(Debug)]
pub struct ReplayedSession {
    /// The session header, if the journal got far enough to have one.
    pub meta: Option<SessionMeta>,
    /// The Recorder state, rebuilt id-for-id and stream-for-stream.
    pub records: AllocationRecords,
    /// The snapshot series, rebuilt from the delta frames.
    pub snapshots: SnapshotSeries,
    /// The commit record, when the journal ends in a clean shutdown. A
    /// replay with a commit is proven complete (the totals cross-check);
    /// without one it is a valid *prefix* of a crashed session.
    pub commit: Option<CommitSummary>,
    /// Frames consumed.
    pub frames: u64,
}

impl ReplayedSession {
    /// True when the journal ends in a validated commit record.
    pub fn committed(&self) -> bool {
        self.commit.is_some()
    }
}

fn replay_err(frame: u64, reason: impl Into<String>) -> JournalError {
    JournalError::Replay {
        frame,
        reason: reason.into(),
    }
}

/// Replays recovered frames into fresh Recorder and Dumper state.
///
/// Strict by design: ids must be dense and in order, batches may only
/// reference defined traces, snapshot deltas must apply cleanly, the commit
/// totals must match the replayed state, and nothing may follow a commit.
/// Any violation means the journal — though CRC-valid — is not a faithful
/// session prefix, and the caller must fall back to re-execution.
///
/// # Errors
///
/// [`JournalError::Replay`] naming the offending frame.
pub fn replay(frames: &[Frame]) -> Result<ReplayedSession, JournalError> {
    let mut meta = None;
    let mut records = AllocationRecords::default();
    let mut snapshots = SnapshotSeries::new();
    let mut commit: Option<CommitSummary> = None;
    let mut prev_column: Vec<u64> = Vec::new();

    for (i, frame) in frames.iter().enumerate() {
        let at = i as u64;
        if commit.is_some() {
            // A retried commit can legitimately duplicate the final frame;
            // anything else after a commit is inconsistent.
            if frame.kind != KIND_COMMIT {
                return Err(replay_err(at, "frame after commit record"));
            }
        }
        match frame.kind {
            KIND_SESSION => {
                if i != 0 {
                    return Err(replay_err(at, "session header not first"));
                }
                meta = Some(SessionMeta::decode(&frame.payload)?);
            }
            _ if i == 0 => {
                return Err(replay_err(
                    at,
                    "journal does not start with a session header",
                ));
            }
            KIND_TRACE_DEF => {
                let (id, trace) = decode_trace_def(&frame.payload)?;
                if id as usize != records.trace_count() {
                    return Err(replay_err(
                        at,
                        format!(
                            "trace {} defined out of order (expected {})",
                            id,
                            records.trace_count()
                        ),
                    ));
                }
                if trace.is_empty() {
                    return Err(replay_err(at, "empty trace definition"));
                }
                let assigned = records.trace_id_for(&trace);
                if assigned.raw() != id {
                    return Err(replay_err(
                        at,
                        format!("trace {id} is a duplicate definition"),
                    ));
                }
            }
            KIND_ALLOC_BATCH => {
                let mut r = WireReader::new(&frame.payload);
                let groups = r.u32()?;
                for _ in 0..groups {
                    let raw_id = r.u32()?;
                    if raw_id as usize >= records.trace_count() {
                        return Err(replay_err(
                            at,
                            format!("batch references undefined trace {raw_id}"),
                        ));
                    }
                    let id = TraceId::from_raw(raw_id);
                    let count = r.u32()?;
                    for _ in 0..count {
                        records.record_traced(id, IdentityHash::from_raw(r.u32()?));
                    }
                }
                r.expect_exhausted()?;
            }
            KIND_SNAPSHOT => {
                let mut r = WireReader::new(&frame.payload);
                let seq = r.u32()?;
                if seq as usize != snapshots.len() {
                    return Err(replay_err(
                        at,
                        format!(
                            "snapshot {} out of order (expected {})",
                            seq,
                            snapshots.len()
                        ),
                    ));
                }
                let at_time = SimTime::from_micros(r.u64()?);
                let size_bytes = r.u64()?;
                let capture = SimDuration::from_micros(r.u64()?);
                let n_added = r.u32()? as usize;
                let n_removed = r.u32()? as usize;
                let mut added = Vec::with_capacity(n_added);
                for _ in 0..n_added {
                    added.push(u64::from(r.u32()?));
                }
                let mut removed = Vec::with_capacity(n_removed);
                for _ in 0..n_removed {
                    removed.push(u64::from(r.u32()?));
                }
                r.expect_exhausted()?;
                let column = apply_delta(at, &prev_column, &added, &removed)?;
                let hashes: IdHashSet<IdentityHash> = column
                    .iter()
                    .map(|&h| IdentityHash::from_raw(h as u32))
                    .collect();
                snapshots.push(Snapshot::new(seq, at_time, hashes, size_bytes, capture));
                prev_column = column;
            }
            KIND_COMMIT => {
                let summary = CommitSummary::decode(&frame.payload)?;
                if summary.total_records != records.total_records()
                    || summary.trace_count as usize != records.trace_count()
                    || summary.snapshot_count as usize != snapshots.len()
                {
                    return Err(replay_err(
                        at,
                        format!(
                            "commit totals disagree with replay: commit says {} records / {} traces / {} snapshots, replay has {} / {} / {}",
                            summary.total_records,
                            summary.trace_count,
                            summary.snapshot_count,
                            records.total_records(),
                            records.trace_count(),
                            snapshots.len()
                        ),
                    ));
                }
                commit = Some(summary);
            }
            kind => return Err(replay_err(at, format!("unknown frame kind {kind}"))),
        }
    }

    Ok(ReplayedSession {
        meta,
        records,
        snapshots,
        commit,
        frames: frames.len() as u64,
    })
}

/// `prev + added − removed`, verifying the delta actually applies: every
/// removed hash must be present, no added hash may already be present.
fn apply_delta(
    frame: u64,
    prev: &[u64],
    added: &[u64],
    removed: &[u64],
) -> Result<Vec<u64>, JournalError> {
    if !is_sorted_unique(added) || !is_sorted_unique(removed) {
        return Err(replay_err(frame, "snapshot delta columns not sorted"));
    }
    let mut out = Vec::with_capacity(prev.len() + added.len() - removed.len().min(prev.len()));
    let mut ai = 0usize;
    let mut ri = 0usize;
    for &h in prev {
        while ai < added.len() && added[ai] < h {
            out.push(added[ai]);
            ai += 1;
        }
        if ai < added.len() && added[ai] == h {
            return Err(replay_err(frame, "snapshot delta adds an existing hash"));
        }
        if ri < removed.len() && removed[ri] == h {
            ri += 1;
            continue;
        }
        out.push(h);
    }
    out.extend_from_slice(&added[ai..]);
    if ri != removed.len() {
        return Err(replay_err(frame, "snapshot delta removes an absent hash"));
    }
    Ok(out)
}

fn is_sorted_unique(v: &[u64]) -> bool {
    v.windows(2).all(|w| w[0] < w[1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use polm2_snapshot::{journal, FsMedia, JournalWriter};
    use std::path::PathBuf;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("polm2-sessionj-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn frame(class_idx: u16, line: u32) -> TraceFrame {
        TraceFrame {
            class_idx,
            method_idx: 0,
            line,
        }
    }

    fn hash(i: u64) -> IdentityHash {
        IdentityHash::of(polm2_heap::ObjectId::new(i))
    }

    fn meta() -> SessionMeta {
        SessionMeta {
            workload: "toy".to_string(),
            seed: 7,
            duration: SimDuration::from_millis(1500),
            every_n_cycles: 1,
        }
    }

    fn snap(seq: u32, ids: &[u64]) -> Snapshot {
        Snapshot::new(
            seq,
            SimTime::from_micros(u64::from(seq) * 1000),
            ids.iter().map(|&i| hash(i)).collect(),
            4096,
            SimDuration::from_micros(250),
        )
    }

    /// Builds a small session in memory, journals it, recovers + replays,
    /// and hands both sides to the assertion closure.
    fn round_trip(tag: &str) -> (AllocationRecords, SnapshotSeries, ReplayedSession) {
        let dir = tempdir(tag);
        let writer = JournalWriter::create_clean(Box::new(FsMedia), &dir, 1 << 20).unwrap();
        let mut j =
            SessionJournal::create(writer, &meta(), JournalRetryPolicy::default(), &mut |_| {})
                .unwrap()
                .with_flush_threshold(0);

        let mut records = AllocationRecords::default();
        let mut series = SnapshotSeries::new();
        let mut counters = FaultCounters::new();
        let mut charge = |_d: SimDuration| {};

        let t0 = records.trace_id_for(&[frame(0, 1), frame(1, 5)]);
        let t1 = records.trace_id_for(&[frame(0, 2)]);
        for i in 0..100u64 {
            records.record_traced(if i % 3 == 0 { t0 } else { t1 }, hash(i));
            if i % 40 == 39 {
                j.flush_records(&records, &mut counters, &mut charge);
                series.push(snap(series.len() as u32, &[i, i + 1, i / 2]));
                j.sync_snapshots(&series, &mut counters, &mut charge);
            }
        }
        let t2 = records.trace_id_for(&[frame(2, 9)]);
        records.record_traced(t2, hash(500));
        series.push(snap(series.len() as u32, &[500]));
        j.sync_snapshots(&series, &mut counters, &mut charge);
        j.commit(&records, &series, &mut counters, &mut charge);
        assert!(j.is_committed());
        assert!(counters.is_clean());

        let recovered = journal::recover(&mut FsMedia, &dir, KIND_COMMIT).unwrap();
        assert!(recovered.report.is_clean());
        assert!(recovered.report.committed);
        let replayed = replay(&recovered.frames).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
        (records, series, replayed)
    }

    fn assert_records_equal(a: &AllocationRecords, b: &AllocationRecords) {
        assert_eq!(a.total_records(), b.total_records());
        assert_eq!(a.trace_count(), b.trace_count());
        for id in a.trace_ids() {
            assert_eq!(a.trace(id), b.trace(id), "trace {}", id.raw());
            assert_eq!(a.stream(id), b.stream(id), "stream {}", id.raw());
            assert_eq!(a.trace_symbols(id), b.trace_symbols(id));
        }
    }

    fn assert_series_equal(a: &SnapshotSeries, b: &SnapshotSeries) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.snapshots().iter().zip(b.snapshots()) {
            assert_eq!(x.seq, y.seq);
            assert_eq!(x.at, y.at);
            assert_eq!(x.size_bytes, y.size_bytes);
            assert_eq!(x.capture_time, y.capture_time);
            assert_eq!(x.live_objects, y.live_objects);
            assert_eq!(x.sorted_hashes(), y.sorted_hashes());
        }
        assert_eq!(
            a.index().survival_counts(),
            b.index().survival_counts(),
            "replayed index must produce identical counts"
        );
    }

    #[test]
    fn session_round_trips_identically() {
        let (records, series, replayed) = round_trip("roundtrip");
        assert_eq!(replayed.meta.as_ref(), Some(&meta()));
        assert!(replayed.committed());
        assert_records_equal(&records, &replayed.records);
        assert_series_equal(&series, &replayed.snapshots);
        let commit = replayed.commit.unwrap();
        assert_eq!(commit.total_records, records.total_records());
    }

    #[test]
    fn every_frame_prefix_replays_or_fails_cleanly() {
        // A truncated journal (cut at any *frame* boundary) must either
        // replay into a valid prefix or fail with a typed error — never
        // panic, never fabricate state.
        let dir = tempdir("prefix");
        let writer = JournalWriter::create_clean(Box::new(FsMedia), &dir, 1 << 20).unwrap();
        let mut j =
            SessionJournal::create(writer, &meta(), JournalRetryPolicy::default(), &mut |_| {})
                .unwrap()
                .with_flush_threshold(0);
        let mut records = AllocationRecords::default();
        let mut series = SnapshotSeries::new();
        let mut counters = FaultCounters::new();
        let t0 = records.trace_id_for(&[frame(0, 1)]);
        for i in 0..30u64 {
            records.record_traced(t0, hash(i));
            if i % 10 == 9 {
                j.flush_records(&records, &mut counters, &mut |_| {});
                series.push(snap(series.len() as u32, &[i, i - 1]));
                j.sync_snapshots(&series, &mut counters, &mut |_| {});
            }
        }
        j.commit(&records, &series, &mut counters, &mut |_| {});
        let frames = journal::recover(&mut FsMedia, &dir, KIND_COMMIT)
            .unwrap()
            .frames;
        std::fs::remove_dir_all(&dir).unwrap();

        for cut in 0..=frames.len() {
            let prefix = &frames[..cut];
            match replay(prefix) {
                Ok(r) => {
                    assert!(r.records.total_records() <= records.total_records());
                    assert!(r.snapshots.len() <= series.len());
                    assert_eq!(r.committed(), cut == frames.len());
                }
                Err(e) => panic!("prefix of {cut} frames must replay: {e}"),
            }
        }
    }

    #[test]
    fn replay_rejects_inconsistent_journals() {
        let (_, _, good) = round_trip("reject");
        let _ = good;
        let dir = tempdir("reject2");
        let writer = JournalWriter::create_clean(Box::new(FsMedia), &dir, 1 << 20).unwrap();
        let mut j =
            SessionJournal::create(writer, &meta(), JournalRetryPolicy::default(), &mut |_| {})
                .unwrap();
        let mut records = AllocationRecords::default();
        let t0 = records.trace_id_for(&[frame(0, 1)]);
        records.record_traced(t0, hash(1));
        let mut counters = FaultCounters::new();
        j.flush_records(&records, &mut counters, &mut |_| {});
        j.commit(&records, &SnapshotSeries::new(), &mut counters, &mut |_| {});
        let frames = journal::recover(&mut FsMedia, &dir, KIND_COMMIT)
            .unwrap()
            .frames;
        std::fs::remove_dir_all(&dir).unwrap();

        // Batch referencing an undefined trace.
        let mut bad = frames.clone();
        bad.remove(1); // drop the trace-def
        assert!(replay(&bad).is_err());

        // Commit totals that disagree with the replayed state.
        let mut bad = frames.clone();
        bad.remove(2); // drop the batch; commit now over-claims
        assert!(replay(&bad).is_err());

        // No session header.
        let bad = frames[1..].to_vec();
        assert!(replay(&bad).is_err());

        // Frame after commit.
        let mut bad = frames.clone();
        bad.push(bad[1].clone());
        assert!(replay(&bad).is_err());

        // Unknown kind.
        let mut bad = frames;
        bad[1].kind = 99;
        assert!(replay(&bad).is_err());
    }

    #[test]
    fn empty_journal_replays_to_an_empty_session() {
        let replayed = replay(&[]).unwrap();
        assert!(replayed.meta.is_none());
        assert!(!replayed.committed());
        assert_eq!(replayed.records.total_records(), 0);
        assert!(replayed.snapshots.is_empty());
    }

    #[test]
    fn flush_threshold_batches_frames() {
        let dir = tempdir("threshold");
        let writer = JournalWriter::create_clean(Box::new(FsMedia), &dir, 1 << 20).unwrap();
        let mut j =
            SessionJournal::create(writer, &meta(), JournalRetryPolicy::default(), &mut |_| {})
                .unwrap()
                .with_flush_threshold(50);
        let mut records = AllocationRecords::default();
        let mut counters = FaultCounters::new();
        let t0 = records.trace_id_for(&[frame(0, 1)]);
        for i in 0..49u64 {
            records.record_traced(t0, hash(i));
            j.sync_records(&records, &mut counters, &mut |_| {});
        }
        // Below threshold: header only.
        let n = journal::recover(&mut FsMedia, &dir, KIND_COMMIT)
            .unwrap()
            .frames
            .len();
        assert_eq!(n, 1, "no batch below the threshold");
        records.record_traced(t0, hash(49));
        j.sync_records(&records, &mut counters, &mut |_| {});
        let n = journal::recover(&mut FsMedia, &dir, KIND_COMMIT)
            .unwrap()
            .frames
            .len();
        assert_eq!(n, 3, "threshold crossing emits trace-def + batch");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
