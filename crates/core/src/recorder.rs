//! The Recorder: allocation logging agent and record store.

use std::cell::RefCell;
use std::rc::Rc;

use polm2_heap::IdentityHash;
use polm2_runtime::{
    AllocEventBuffer, ClassDef, ClassTransformer, CodeLoc, Instr, LoadedProgram, TraceFrame,
    TraceTrie,
};

use crate::error::PipelineError;
use crate::symbols::{FrameInterner, SymbolId};

/// Identifies one unique allocation stack trace.
///
/// The paper's Recorder keeps a table of stack traces in memory and streams
/// object ids per trace (§3.2) so each trace is written once; `TraceId`
/// indexes that table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(u32);

impl TraceId {
    /// The raw index.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Rewraps a raw index (journal replay; ids are only meaningful against
    /// the [`AllocationRecords`] that assigned them).
    pub(crate) const fn from_raw(raw: u32) -> Self {
        TraceId(raw)
    }
}

/// The Recorder's output: interned stack traces plus, per trace, the stream
/// of identity hashes of objects allocated through it.
///
/// Frames are interned into dense [`SymbolId`]s at record time, so traces are
/// stored (and compared) as small integer vectors and everything downstream
/// works on symbol ids; see [`crate::FrameInterner`].
#[derive(Debug, Default)]
pub struct AllocationRecords {
    /// Per-frame symbol table, populated at record time.
    symbols: FrameInterner,
    /// Interned traces, as frame-symbol paths (outermost first).
    traces: Vec<Vec<SymbolId>>,
    /// Trace intern map; hashed with the heap's fast id hasher — this map
    /// is hit once per recorded allocation.
    by_trace: std::collections::HashMap<Vec<SymbolId>, TraceId, polm2_heap::BuildIdHasher>,
    /// Per-trace object-id streams (identity hashes, §4.3). The Recorder
    /// deliberately does NOT index by hash: the paper's Recorder streams ids
    /// to disk precisely to avoid per-object memory overhead (§3.2).
    streams: Vec<Vec<IdentityHash>>,
    total_records: u64,
    /// Reused per record to avoid an allocation per event.
    scratch: Vec<SymbolId>,
}

impl AllocationRecords {
    /// Records one allocation.
    pub fn record(&mut self, trace: &[TraceFrame], hash: IdentityHash) {
        let id = self.trace_id_for(trace);
        self.record_traced(id, hash);
    }

    /// Interns `trace` (outermost first), assigning the next dense
    /// [`TraceId`] on first sight. Symbol and trace ids depend only on
    /// first-seen order, so any path that feeds traces in event order — a
    /// per-event stack walk or a trie-node memo — produces identical ids.
    pub fn trace_id_for(&mut self, trace: &[TraceFrame]) -> TraceId {
        self.scratch.clear();
        for &frame in trace {
            self.scratch.push(self.symbols.intern(frame));
        }
        match self.by_trace.get(&self.scratch) {
            Some(&id) => id,
            None => {
                let id = TraceId(self.traces.len() as u32);
                self.by_trace.insert(self.scratch.clone(), id);
                self.traces.push(self.scratch.clone());
                self.streams.push(Vec::new());
                id
            }
        }
    }

    /// Records one allocation against an already-interned trace: one stream
    /// push — the steady state of the trie recorder path.
    #[inline]
    pub fn record_traced(&mut self, id: TraceId, hash: IdentityHash) {
        self.streams[id.0 as usize].push(hash);
        self.total_records += 1;
    }

    /// Number of distinct stack traces observed.
    pub fn trace_count(&self) -> usize {
        self.traces.len()
    }

    /// Total allocations recorded.
    pub fn total_records(&self) -> u64 {
        self.total_records
    }

    /// The compact frames of a trace (materialized from the symbol table).
    pub fn trace(&self, id: TraceId) -> Vec<TraceFrame> {
        self.traces[id.0 as usize]
            .iter()
            .map(|&s| self.symbols.resolve(s))
            .collect()
    }

    /// The frame-symbol path of a trace (the hot-path view; resolve symbols
    /// through [`symbols`](AllocationRecords::symbols)).
    pub fn trace_symbols(&self, id: TraceId) -> &[SymbolId] {
        &self.traces[id.0 as usize]
    }

    /// The frame symbol table populated at record time.
    pub fn symbols(&self) -> &FrameInterner {
        &self.symbols
    }

    /// The identity-hash stream of a trace.
    pub fn stream(&self, id: TraceId) -> &[IdentityHash] {
        &self.streams[id.0 as usize]
    }

    /// Iterates over all trace ids.
    pub fn trace_ids(&self) -> impl Iterator<Item = TraceId> {
        (0..self.traces.len() as u32).map(TraceId)
    }

    /// Resolves a trace to human-readable locations ("flushing the stack
    /// traces to disk", done once per trace at the end of profiling).
    pub fn resolve_trace(&self, id: TraceId, program: &LoadedProgram) -> Vec<CodeLoc> {
        self.traces[id.0 as usize]
            .iter()
            .map(|&s| self.symbols.code_loc(s, program))
            .collect()
    }
}

/// `node_trace` memo: node not yet seen by the Recorder.
const NODE_UNSEEN: u32 = u32::MAX;
/// `node_trace` memo: node failed validation; every event through it drops.
const NODE_CORRUPT: u32 = u32::MAX - 1;

/// The Recorder component.
///
/// Owns the [`AllocationRecords`] store and hands out the load-time agent
/// that makes the runtime report every allocation
/// ([`Recorder::agent`]).
#[derive(Debug, Default)]
pub struct Recorder {
    records: Rc<RefCell<AllocationRecords>>,
    instrumented_sites: Rc<RefCell<u64>>,
    /// Memoized `trie node → TraceId` side table for
    /// [`ingest_nodes_checked`](Recorder::ingest_nodes_checked): index is the
    /// node id (valid because the runtime never renumbers trie nodes), value
    /// is a raw [`TraceId`] or a [`NODE_UNSEEN`]/[`NODE_CORRUPT`] sentinel.
    /// Steady-state ingest cost is one memo read plus one stream push.
    node_trace: Vec<u32>,
    /// Reused trace-materialization buffer for first-seen nodes.
    path_scratch: Vec<TraceFrame>,
}

impl Recorder {
    /// Creates an idle recorder.
    pub fn new() -> Self {
        Recorder::default()
    }

    /// The load-time agent: inserts a logging callback after every
    /// allocation instruction, exactly as the paper's Recorder rewrites
    /// bytecode with ASM (§4.1).
    pub fn agent(&self) -> Box<dyn ClassTransformer> {
        Box::new(RecorderAgent {
            instrumented_sites: Rc::clone(&self.instrumented_sites),
        })
    }

    /// Ingests allocation events drained from the runtime.
    ///
    /// Trusts the events structurally — use
    /// [`ingest_checked`](Recorder::ingest_checked) for events that may have
    /// crossed a lossy boundary.
    pub fn ingest(&mut self, events: Vec<polm2_runtime::AllocEvent>) {
        let mut records = self.records.borrow_mut();
        for event in events {
            records.record(&event.trace, event.hash);
        }
    }

    /// Ingests events, dropping structurally corrupt ones: an event with an
    /// empty trace or a frame that does not resolve in `program` cannot be
    /// attributed to any allocation path, so recording it would poison the
    /// trace table. Returns the number of events dropped.
    pub fn ingest_checked(
        &mut self,
        events: Vec<polm2_runtime::AllocEvent>,
        program: &LoadedProgram,
    ) -> u64 {
        let mut records = self.records.borrow_mut();
        let mut dropped = 0;
        for event in events {
            let corrupt =
                event.trace.is_empty() || event.trace.iter().any(|&f| !program.frame_is_valid(f));
            if corrupt {
                dropped += 1;
                continue;
            }
            records.record(&event.trace, event.hash);
        }
        dropped
    }

    /// Ingests a columnar batch of `(trace node, identity hash)` pairs
    /// straight from the runtime's per-thread buffers — the trie recorder
    /// fast path, skipping trace materialization entirely.
    ///
    /// The first event through a node materializes its path from `trie`,
    /// validates every frame against `program` (corrupt nodes are dropped
    /// and counted, like [`ingest_checked`](Recorder::ingest_checked)), and
    /// memoizes the resulting [`TraceId`]; every later event through that
    /// node is a memo read plus a stream push. Returns the number of events
    /// dropped.
    ///
    /// The memo is keyed by node id, so a `Recorder` must only ever see
    /// batches from one runtime's trie (the pipeline pairs them 1:1).
    pub fn ingest_nodes_checked(
        &mut self,
        trie: &TraceTrie,
        program: &LoadedProgram,
        batch: &AllocEventBuffer,
    ) -> u64 {
        if self.node_trace.len() < trie.len() {
            self.node_trace.resize(trie.len(), NODE_UNSEEN);
        }
        let mut records = self.records.borrow_mut();
        let mut dropped = 0;
        for (&node, &hash) in batch.nodes().iter().zip(batch.hashes()) {
            let memo = self.node_trace[node.index()];
            let id = match memo {
                NODE_CORRUPT => {
                    dropped += 1;
                    continue;
                }
                NODE_UNSEEN => {
                    self.path_scratch.clear();
                    trie.path_into(node, &mut self.path_scratch);
                    let corrupt = self.path_scratch.is_empty()
                        || self
                            .path_scratch
                            .iter()
                            .any(|&f| !program.frame_is_valid(f));
                    if corrupt {
                        self.node_trace[node.index()] = NODE_CORRUPT;
                        dropped += 1;
                        continue;
                    }
                    let id = records.trace_id_for(&self.path_scratch);
                    self.node_trace[node.index()] = id.raw();
                    id
                }
                raw => TraceId(raw),
            };
            records.record_traced(id, hash);
        }
        dropped
    }

    /// Number of allocation sites the agent instrumented at load time.
    pub fn instrumented_sites(&self) -> u64 {
        *self.instrumented_sites.borrow()
    }

    /// Read access to the records.
    pub fn records(&self) -> std::cell::Ref<'_, AllocationRecords> {
        self.records.borrow()
    }

    /// Extracts the records, consuming the recorder ("flush at the end of
    /// the profiling run", §3.2).
    ///
    /// # Errors
    ///
    /// [`PipelineError::RecorderBusy`] if the recorder's agent is still
    /// installed in a live runtime holding a second reference.
    pub fn into_records(self) -> Result<AllocationRecords, PipelineError> {
        Rc::try_unwrap(self.records)
            .map(RefCell::into_inner)
            .map_err(|_| PipelineError::RecorderBusy)
    }
}

struct RecorderAgent {
    instrumented_sites: Rc<RefCell<u64>>,
}

impl ClassTransformer for RecorderAgent {
    fn name(&self) -> &str {
        "polm2-recorder"
    }

    fn transform(&mut self, class: &mut ClassDef) {
        let mut count = 0;
        for method in &mut class.methods {
            instrument_block(&mut method.body, &mut count);
        }
        *self.instrumented_sites.borrow_mut() += count;
    }
}

fn instrument_block(block: &mut Vec<Instr>, count: &mut u64) {
    let mut out = Vec::with_capacity(block.len());
    for mut instr in block.drain(..) {
        match &mut instr {
            Instr::Branch {
                then_block,
                else_block,
                ..
            } => {
                instrument_block(then_block, count);
                instrument_block(else_block, count);
                out.push(instr);
            }
            Instr::Repeat { body, .. } => {
                instrument_block(body, count);
                out.push(instr);
            }
            Instr::Alloc { line, .. } => {
                let line = *line;
                *count += 1;
                out.push(instr);
                out.push(Instr::RecordAlloc { line });
            }
            _ => out.push(instr),
        }
    }
    *block = out;
}

#[cfg(test)]
mod tests {
    use super::*;
    use polm2_heap::ObjectId;
    use polm2_runtime::{MethodDef, Program, SizeSpec};

    fn frame(line: u32) -> TraceFrame {
        TraceFrame {
            class_idx: 0,
            method_idx: 0,
            line,
        }
    }

    #[test]
    fn records_intern_traces_and_stream_hashes() {
        let mut r = AllocationRecords::default();
        let t1 = vec![frame(1), frame(5)];
        let t2 = vec![frame(2), frame(5)];
        r.record(&t1, IdentityHash::of(ObjectId::new(1)));
        r.record(&t1, IdentityHash::of(ObjectId::new(2)));
        r.record(&t2, IdentityHash::of(ObjectId::new(3)));
        assert_eq!(r.trace_count(), 2);
        assert_eq!(r.total_records(), 3);
        let id = r.trace_ids().next().unwrap();
        assert_eq!(r.trace(id), &t1[..]);
        assert_eq!(r.stream(id).len(), 2);
    }

    #[test]
    fn duplicate_hashes_are_tolerated() {
        // Identity-hash collisions are possible, as in the JVM; recording
        // just streams both.
        let mut r = AllocationRecords::default();
        let h = IdentityHash::of(ObjectId::new(1));
        r.record(&[frame(1)], h);
        r.record(&[frame(2)], h);
        assert_eq!(r.total_records(), 2);
        assert_eq!(r.trace_count(), 2);
    }

    #[test]
    fn agent_inserts_record_after_every_alloc_including_nested() {
        let mut program = Program::new();
        program.add_class(
            ClassDef::new("A").with_method(
                MethodDef::new("m")
                    .push(Instr::alloc("X", SizeSpec::Fixed(8), 1))
                    .push(Instr::Branch {
                        cond: "c".into(),
                        then_block: vec![Instr::alloc("Y", SizeSpec::Fixed(8), 3)],
                        else_block: vec![],
                        line: 2,
                    }),
            ),
        );
        let recorder = Recorder::new();
        let mut agent = recorder.agent();
        agent.transform(&mut program.classes_mut()[0]);
        assert_eq!(recorder.instrumented_sites(), 2);
        let body = &program.class("A").unwrap().method("m").unwrap().body;
        assert!(matches!(body[1], Instr::RecordAlloc { line: 1 }));
        if let Instr::Branch { then_block, .. } = &body[2] {
            assert!(matches!(then_block[1], Instr::RecordAlloc { line: 3 }));
        } else {
            panic!("branch preserved");
        }
    }

    #[test]
    fn into_records_round_trips() {
        let mut recorder = Recorder::new();
        recorder.ingest(vec![polm2_runtime::AllocEvent {
            trace: vec![frame(4)],
            object: ObjectId::new(7),
            hash: IdentityHash::of(ObjectId::new(7)),
            site: polm2_heap::SiteId::new(0),
            at: polm2_metrics::SimTime::ZERO,
        }]);
        let records = recorder.into_records().unwrap();
        assert_eq!(records.total_records(), 1);
        assert_eq!(records.trace_count(), 1);
    }

    #[test]
    fn into_records_reports_busy_instead_of_panicking() {
        let recorder = Recorder::new();
        let second_ref = Rc::clone(&recorder.records);
        assert!(matches!(
            recorder.into_records(),
            Err(PipelineError::RecorderBusy)
        ));
        drop(second_ref);
    }

    #[test]
    fn ingest_checked_drops_corrupt_events_and_counts_them() {
        use polm2_heap::{Heap, HeapConfig};
        use polm2_runtime::Loader;
        let mut program = Program::new();
        program.add_class(
            ClassDef::new("A").with_method(MethodDef::new("m").push(Instr::alloc(
                "X",
                SizeSpec::Fixed(8),
                1,
            ))),
        );
        let mut heap = Heap::new(HeapConfig::small());
        let loaded = Loader::load(program, &mut [], &mut heap).unwrap();

        let ev = |trace: Vec<TraceFrame>, i: u64| polm2_runtime::AllocEvent {
            trace,
            object: ObjectId::new(i),
            hash: IdentityHash::of(ObjectId::new(i)),
            site: polm2_heap::SiteId::new(0),
            at: polm2_metrics::SimTime::ZERO,
        };
        let mut recorder = Recorder::new();
        let dropped = recorder.ingest_checked(
            vec![
                ev(
                    vec![TraceFrame {
                        class_idx: 0,
                        method_idx: 0,
                        line: 1,
                    }],
                    1,
                ),
                ev(vec![], 2),
                ev(
                    vec![TraceFrame {
                        class_idx: u16::MAX,
                        method_idx: 0,
                        line: 1,
                    }],
                    3,
                ),
                ev(
                    vec![TraceFrame {
                        class_idx: 0,
                        method_idx: u16::MAX,
                        line: 1,
                    }],
                    4,
                ),
            ],
            &loaded,
        );
        assert_eq!(dropped, 3);
        assert_eq!(recorder.records().total_records(), 1);
    }
}
