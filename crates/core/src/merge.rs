//! Degraded merge: union a fleet of per-tenant session journals into one
//! combined profile, tolerating the journals a supervised fleet actually
//! leaves behind.
//!
//! A multi-tenant profiling run ends with one journal directory per tenant,
//! and not all of them are pristine: a tenant may have been killed before
//! its commit frame (torn journal), had its directory lost wholesale
//! (missing journal), suffered bit rot (corrupt journal), or been
//! quarantined by the supervisor for reasons the journal alone cannot show
//! (watchdog deadline, retry budget). The merge never lets one bad tenant
//! poison the rest:
//!
//! * every journal is recovered independently ([`recover_tenants`]) — the
//!   valid prefix is replayed even when the tail is torn, so the ledger can
//!   say exactly what was salvaged and what was dropped;
//! * only tenants whose journal **committed** and whose supervisor did not
//!   exclude them contribute to the merged payload; everything else is
//!   quarantined with a typed [`TenantStatus`] and shows up only in the
//!   comment ledger of the rendered profile;
//! * each surviving tenant is analyzed in its own scoped thread with its
//!   own [`SttTree`] — a panic during one tenant's analysis demotes that
//!   tenant to [`TenantStatus::AnalysisFailed`] instead of unwinding
//!   through the merge.
//!
//! The rendered output ([`MergedProfile::render`]) is deterministic: the
//! payload (non-`#` lines) is a function of the healthy tenants alone, so
//! a chaos run that poisons tenant *k* must produce a payload bit-identical
//! to a run that never started tenant *k*. Tests hold the merge to exactly
//! that invariant.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

use polm2_metrics::FaultCounters;
use polm2_runtime::LoadedProgram;
use polm2_snapshot::journal::recover;
use polm2_snapshot::{FsMedia, FsckReport};

use crate::analyzer::{AnalysisOutcome, Analyzer, AnalyzerConfig};
use crate::journal::{replay, ReplayedSession, SessionMeta, KIND_COMMIT};
use crate::profile::seal_profile_text;
use crate::sttree::SttTree;

/// One tenant's journal directory, as handed to [`recover_tenants`].
#[derive(Debug, Clone)]
pub struct TenantInput {
    /// Tenant name (stable across the run; used in the rendered output).
    pub tenant: String,
    /// The tenant's `polm2-journal v1` segment directory.
    pub dir: PathBuf,
    /// `Some(reason)` when the supervisor quarantined this tenant: its
    /// journal is still recovered for the ledger, but it is excluded from
    /// the merged payload even if the journal looks committed (a tenant
    /// killed *after* its commit frame still did not finish cleanly).
    pub exclude: Option<String>,
}

/// One tenant's journal after independent recovery: the fsck findings plus
/// the replayed valid prefix, with failures captured instead of propagated.
#[derive(Debug)]
pub struct RecoveredTenant {
    /// Tenant name, copied from the input.
    pub tenant: String,
    /// Supervisor exclusion, copied from the input.
    pub exclude: Option<String>,
    /// The journaled session header, when the prefix got that far.
    pub meta: Option<SessionMeta>,
    /// Fsck findings for the journal as found.
    pub report: FsckReport,
    /// The replayed valid prefix; `None` when the directory is missing or
    /// the frames do not replay as a session prefix.
    pub replayed: Option<ReplayedSession>,
    /// Why replay failed, when it did.
    pub replay_error: Option<String>,
    /// True when the journal directory did not exist at all.
    pub missing: bool,
}

impl RecoveredTenant {
    /// True when the replayed prefix ends in a validated commit.
    pub fn committed(&self) -> bool {
        self.replayed.as_ref().is_some_and(|r| r.committed())
    }
}

/// Recovers every tenant journal independently. Never fails: a missing
/// directory, torn tail, or unreplayable frame sequence becomes state on
/// that tenant's [`RecoveredTenant`], leaving the others untouched.
pub fn recover_tenants(inputs: &[TenantInput]) -> Vec<RecoveredTenant> {
    inputs
        .iter()
        .map(|input| {
            // `recover` treats a missing directory as an empty journal;
            // the merge must tell "never wrote anything" apart from
            // "wrote and lost everything", so probe the directory first.
            if !input.dir.is_dir() {
                return RecoveredTenant {
                    tenant: input.tenant.clone(),
                    exclude: input.exclude.clone(),
                    meta: None,
                    report: FsckReport::default(),
                    replayed: None,
                    replay_error: None,
                    missing: true,
                };
            }
            let mut media = FsMedia;
            let (report, replayed, replay_error) =
                match recover(&mut media, &input.dir, KIND_COMMIT) {
                    Ok(recovered) => match replay(&recovered.frames) {
                        Ok(session) => (recovered.report, Some(session), None),
                        Err(e) => (recovered.report, None, Some(e.to_string())),
                    },
                    Err(e) => (FsckReport::default(), None, Some(e.to_string())),
                };
            RecoveredTenant {
                tenant: input.tenant.clone(),
                exclude: input.exclude.clone(),
                meta: replayed.as_ref().and_then(|r| r.meta.clone()),
                report,
                replayed,
                replay_error,
                missing: false,
            }
        })
        .collect()
}

/// Why a tenant did or did not contribute to the merged payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TenantStatus {
    /// Committed journal, clean analysis: in the payload.
    Merged,
    /// The supervisor quarantined the tenant; the journal (whatever its
    /// state) is ledger-only.
    ExcludedBySupervisor {
        /// The supervisor's quarantine reason.
        reason: String,
    },
    /// The journal directory does not exist.
    MissingJournal,
    /// The journal is a valid but uncommitted prefix (crash / kill / torn
    /// tail). The prefix was replayed for the ledger only.
    TornJournal {
        /// CRC-valid frames salvaged from the prefix.
        frames_salvaged: u64,
    },
    /// The journal's frames do not replay as a session prefix, or recovery
    /// itself failed (foreign or mangled journal).
    CorruptJournal {
        /// The replay or recovery error.
        reason: String,
    },
    /// The journal committed but this tenant's analysis panicked or its
    /// workload program could not be rebuilt.
    AnalysisFailed {
        /// What went wrong.
        reason: String,
    },
}

impl TenantStatus {
    /// True for every variant except [`TenantStatus::Merged`].
    pub fn is_quarantined(&self) -> bool {
        !matches!(self, TenantStatus::Merged)
    }

    /// Stable one-word label for tables and ledger lines.
    pub fn label(&self) -> &'static str {
        match self {
            TenantStatus::Merged => "merged",
            TenantStatus::ExcludedBySupervisor { .. } => "quarantined",
            TenantStatus::MissingJournal => "missing-journal",
            TenantStatus::TornJournal { .. } => "torn-journal",
            TenantStatus::CorruptJournal { .. } => "corrupt-journal",
            TenantStatus::AnalysisFailed { .. } => "analysis-failed",
        }
    }

    /// Human-readable detail for tables and ledger lines.
    pub fn detail(&self) -> String {
        match self {
            TenantStatus::Merged => String::new(),
            TenantStatus::ExcludedBySupervisor { reason } => reason.clone(),
            TenantStatus::MissingJournal => "journal directory not found".into(),
            TenantStatus::TornJournal { frames_salvaged } => {
                format!("uncommitted prefix, {frames_salvaged} frame(s) salvaged")
            }
            TenantStatus::CorruptJournal { reason } => reason.clone(),
            TenantStatus::AnalysisFailed { reason } => reason.clone(),
        }
    }
}

/// One tenant's contribution to (or exclusion from) the merged profile.
#[derive(Debug)]
pub struct TenantProfile {
    /// Tenant name.
    pub tenant: String,
    /// Workload name from the journaled session header, `"?"` when the
    /// journal never got that far.
    pub workload: String,
    /// Seed from the session header.
    pub seed: u64,
    /// Merged, or why not.
    pub status: TenantStatus,
    /// The per-tenant analysis; `Some` only for merged tenants.
    pub outcome: Option<AnalysisOutcome>,
    /// The tenant's own stack-trace tree, rebuilt from the analyzed
    /// lifetimes; `Some` only for merged tenants.
    pub tree: Option<SttTree>,
    /// Allocation records salvaged (full count for merged tenants, the
    /// valid prefix for torn ones).
    pub records: u64,
    /// Snapshots salvaged.
    pub snapshots: u64,
    /// Faults: the committed ledger plus analysis demotions for merged
    /// tenants; the salvage ledger (truncated frames, missing segments)
    /// for torn, corrupt, or missing journals.
    pub counters: FaultCounters,
}

/// The fleet-wide merge result: every tenant, in input order.
#[derive(Debug)]
pub struct MergedProfile {
    /// Per-tenant results, in the order the inputs were given.
    pub tenants: Vec<TenantProfile>,
}

impl MergedProfile {
    /// Tenants that contributed to the payload.
    pub fn merged_count(&self) -> usize {
        self.tenants
            .iter()
            .filter(|t| !t.status.is_quarantined())
            .count()
    }

    /// Tenants that were quarantined (any reason).
    pub fn quarantined_count(&self) -> usize {
        self.tenants.len() - self.merged_count()
    }

    /// True when at least one tenant was quarantined but the merge still
    /// produced a payload.
    pub fn is_degraded(&self) -> bool {
        self.quarantined_count() > 0 && !self.all_quarantined()
    }

    /// True when no tenant survived to contribute.
    pub fn all_quarantined(&self) -> bool {
        self.merged_count() == 0
    }

    /// Fleet-wide fault ledger: every tenant's counters merged.
    pub fn aggregate_counters(&self) -> FaultCounters {
        let mut total = FaultCounters::new();
        for t in &self.tenants {
            total.merge(&t.counters);
        }
        total
    }

    /// Renders the merged profile as `polm2-fleet v1` text.
    ///
    /// The payload (non-`#` lines) is built from merged tenants alone:
    /// per tenant, a `tenant …` header line, its allocation profile body
    /// (the `site`/`call` lines of the standard profile format), and an
    /// `end …` line. Quarantined tenants appear only as `# polm2-…`
    /// comment ledger lines, so stripping comments yields a payload that
    /// is bit-identical whether a poisoned tenant was quarantined or never
    /// ran at all. The text ends with the standard CRC footer.
    pub fn render(&self) -> String {
        let mut out = String::from("polm2-fleet v1\n");
        for t in &self.tenants {
            let Some(outcome) = &t.outcome else { continue };
            out.push_str(&format!(
                "tenant {} workload {} seed {} records {} snapshots {} sites {} conflicts {}\n",
                t.tenant,
                t.workload,
                t.seed,
                t.records,
                t.snapshots,
                outcome.profile.sites().len(),
                outcome.conflicts.len(),
            ));
            let body = outcome.profile.to_string();
            for line in body.lines().skip(1) {
                out.push_str(line);
                out.push('\n');
            }
            out.push_str(&format!("end {}\n", t.tenant));
        }
        for t in &self.tenants {
            if !t.status.is_quarantined() {
                continue;
            }
            out.push_str(&format!(
                "# polm2-quarantined {} {} {}\n",
                t.tenant,
                t.status.label(),
                t.status.detail(),
            ));
            for (name, value) in t.counters.entries() {
                if value != 0 {
                    out.push_str(&format!(
                        "# polm2-tenant-faults {} {name} {value}\n",
                        t.tenant
                    ));
                }
            }
        }
        for (name, value) in self.aggregate_counters().entries() {
            out.push_str(&format!("# polm2-faults {name} {value}\n"));
        }
        seal_profile_text(&mut out);
        out
    }
}

/// Analyzes every surviving tenant and assembles the merged profile.
///
/// `programs` pairs with `recovered` index-for-index: the caller resolves
/// each tenant's workload name (from [`RecoveredTenant::meta`]) to a loaded
/// program on its side of the crate boundary — this crate knows nothing
/// about the workload registry. `None` for tenants that cannot contribute
/// anyway (quarantined) or whose workload is unknown.
///
/// Merged tenants are analyzed concurrently, one scoped thread per tenant,
/// joined in input order so the output is deterministic. A panic inside one
/// tenant's analysis is caught at the thread boundary and demotes exactly
/// that tenant to [`TenantStatus::AnalysisFailed`].
pub fn merge_tenants(
    recovered: Vec<RecoveredTenant>,
    programs: Vec<Option<LoadedProgram>>,
    analyzer: &AnalyzerConfig,
) -> MergedProfile {
    assert_eq!(
        recovered.len(),
        programs.len(),
        "one program slot per recovered tenant"
    );
    let analyzed: Vec<Option<Result<AnalysisOutcome, String>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = recovered
            .iter()
            .zip(&programs)
            .map(|(tenant, program)| {
                // Only committed, non-excluded tenants are analyzed.
                if tenant.exclude.is_some() || !tenant.committed() {
                    return None;
                }
                let Some(program) = program else {
                    let workload = tenant.meta.as_ref().map_or("?", |m| m.workload.as_str());
                    return Some(Err(format!("unknown workload {workload:?}")));
                };
                let replayed = tenant.replayed.as_ref().expect("committed() checked");
                let config = *analyzer;
                Some(Ok(scope.spawn(move || {
                    catch_unwind(AssertUnwindSafe(|| {
                        Analyzer::new(config).analyze(
                            &replayed.records,
                            &replayed.snapshots,
                            program,
                        )
                    }))
                    .map_err(|panic| {
                        let reason = panic
                            .downcast_ref::<&str>()
                            .map(|s| (*s).to_string())
                            .or_else(|| panic.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "analysis panicked".into());
                        format!("analysis panicked: {reason}")
                    })
                })))
            })
            .collect();
        handles
            .into_iter()
            .map(|slot| {
                slot.map(|entry| match entry {
                    Ok(handle) => handle
                        .join()
                        .unwrap_or_else(|p| std::panic::resume_unwind(p)),
                    Err(reason) => Err(reason),
                })
            })
            .collect()
    });

    let tenants = recovered
        .into_iter()
        .zip(analyzed)
        .map(|(tenant, analysis)| finish_tenant(tenant, analysis))
        .collect();
    MergedProfile { tenants }
}

/// Folds one tenant's recovery state and (optional) analysis into its final
/// [`TenantProfile`].
fn finish_tenant(
    tenant: RecoveredTenant,
    analysis: Option<Result<AnalysisOutcome, String>>,
) -> TenantProfile {
    let workload = tenant
        .meta
        .as_ref()
        .map_or_else(|| "?".to_string(), |m| m.workload.clone());
    let seed = tenant.meta.as_ref().map_or(0, |m| m.seed);
    let (records, snapshots) = tenant.replayed.as_ref().map_or((0, 0), |r| {
        (r.records.total_records(), r.snapshots.len() as u64)
    });

    // The salvage ledger for anything that did not merge cleanly: what the
    // journal lost, in the same counters a crashed single run reports.
    let salvage_counters = |tenant: &RecoveredTenant| {
        let mut c = FaultCounters::new();
        c.journal_frames_truncated += tenant.report.defective_segments() as u64;
        c.journal_segments_missing += tenant.report.missing_segments.len() as u64;
        c
    };

    let (status, outcome, counters) = if let Some(reason) = &tenant.exclude {
        (
            TenantStatus::ExcludedBySupervisor {
                reason: reason.clone(),
            },
            None,
            salvage_counters(&tenant),
        )
    } else if tenant.missing {
        (
            TenantStatus::MissingJournal,
            None,
            salvage_counters(&tenant),
        )
    } else if let Some(reason) = &tenant.replay_error {
        (
            TenantStatus::CorruptJournal {
                reason: reason.clone(),
            },
            None,
            salvage_counters(&tenant),
        )
    } else if !tenant.committed() {
        (
            TenantStatus::TornJournal {
                frames_salvaged: tenant.replayed.as_ref().map_or(0, |r| r.frames),
            },
            None,
            salvage_counters(&tenant),
        )
    } else {
        match analysis {
            Some(Ok(outcome)) => {
                // Mirror the single-run resume path: the committed ledger
                // predates the analysis, so demotions are added here.
                let commit = tenant
                    .replayed
                    .as_ref()
                    .and_then(|r| r.commit.as_ref())
                    .expect("committed() checked");
                let mut counters = commit.counters;
                counters.traces_demoted += outcome.demoted_traces;
                (TenantStatus::Merged, Some(outcome), counters)
            }
            Some(Err(reason)) => (
                TenantStatus::AnalysisFailed { reason },
                None,
                salvage_counters(&tenant),
            ),
            None => (
                TenantStatus::AnalysisFailed {
                    reason: "no analysis slot for a committed tenant".into(),
                },
                None,
                salvage_counters(&tenant),
            ),
        }
    };

    // Rebuild the tenant's own stack-trace tree from the analyzed
    // lifetimes: the merge keeps per-tenant trees, never a cross-tenant
    // union (tenants may run different programs entirely).
    let tree = outcome.as_ref().map(|o| {
        let mut tree = SttTree::new();
        for t in o.lifetimes.traces() {
            if !t.path.is_empty() {
                tree.insert_path(&t.path, t.gen);
            }
        }
        tree
    });

    TenantProfile {
        tenant: tenant.tenant,
        workload,
        seed,
        status,
        outcome,
        tree,
        records,
        snapshots,
        counters,
    }
}
