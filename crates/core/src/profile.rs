//! The allocation profile: the profiling phase's output, the production
//! phase's input (paper §3.5).
//!
//! Serialized as a small line-oriented text format so profiles can be saved
//! per workload and chosen at launch time ("one allocation profile per
//! expected workload"):
//!
//! ```text
//! polm2-profile v1
//! site <class> <method> <line> gen <g> [local]
//! call <class> <method> <line> gen <g>
//! ```
//!
//! * `site` — `@Gen`-annotate this allocation site; with `local`, also set
//!   the target generation right at the site (non-conflicted, unhoisted).
//! * `call` — wrap this call site in `setGeneration(g)` / restore.
//!
//! Lines starting with `#` are comments and are ignored (the CLI appends
//! fault-counter footers this way). Generation numbers must lie in
//! `1..=`[`MAX_PROFILE_GEN`]: 0 is the young default (a profile entry for it
//! is meaningless) and an absurdly large number is a corruption tell — a
//! production launch must not create thousands of generations because one
//! byte flipped on disk.

use std::error::Error;
use std::fmt;
use std::str::FromStr;

use polm2_heap::GenId;
use polm2_runtime::{CodeLoc, Instr, Program};
use polm2_snapshot::crc32;

/// The largest generation number a serialized profile may reference.
///
/// Launch time creates every generation up to the profile's maximum
/// ([`crate::ProductionSetup::prepare_generations`]), so this bounds the
/// damage a corrupted profile file can do.
pub const MAX_PROFILE_GEN: u32 = 64;

/// The comment prefix of the integrity footer [`seal_profile_text`] appends.
pub const CRC_FOOTER_PREFIX: &str = "# polm2-crc ";

/// Appends an integrity footer to serialized profile text: a CRC-32 (as
/// eight hex digits) over every byte preceding the footer line. The footer
/// is a `#` comment, so pre-footer readers still parse sealed files; the
/// parser validates it when present, turning silent on-disk corruption
/// (truncation, bit rot, partial writes) into a typed
/// [`ProfileParseError`].
pub fn seal_profile_text(text: &mut String) {
    if !text.is_empty() && !text.ends_with('\n') {
        text.push('\n');
    }
    let crc = crc32(text.as_bytes());
    text.push_str(&format!("{CRC_FOOTER_PREFIX}{crc:08x}\n"));
}

/// Validates every `# polm2-crc` footer in `s`: each must equal the CRC-32
/// of all bytes before it. Footers are found by byte offset, not by line
/// structure — corruption that mangles the newline in front of a footer
/// would otherwise hide the footer inside a comment and bypass the check.
fn verify_crc_footers(s: &str) -> Result<(), ProfileParseError> {
    for (offset, _) in s.match_indices(CRC_FOOTER_PREFIX) {
        let lineno = s[..offset].matches('\n').count() + 1;
        let err = |message: String| ProfileParseError {
            line: lineno,
            message,
        };
        let rest = &s[offset + CRC_FOOTER_PREFIX.len()..];
        let hex = rest.lines().next().unwrap_or("").trim();
        let claimed = u32::from_str_radix(hex, 16)
            .map_err(|_| err(format!("bad checksum footer {hex:?}")))?;
        let actual = crc32(&s.as_bytes()[..offset]);
        if claimed != actual {
            return Err(err(format!(
                "checksum mismatch: footer says {claimed:08x}, contents hash to \
                 {actual:08x} — the profile is corrupt or was edited without resealing"
            )));
        }
    }
    Ok(())
}

/// An allocation site the Instrumenter must `@Gen`-annotate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PretenuredSite {
    /// The allocation site.
    pub loc: CodeLoc,
    /// The generation objects from this site should live in (via the target
    /// generation — informative for `local == false`, binding otherwise).
    pub gen: GenId,
    /// True if the site itself sets the target generation (no hoisting, no
    /// conflict); false if an ancestor `call` entry provides it.
    pub local: bool,
}

/// A call site to wrap in `setGeneration(gen)` / restore.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenCall {
    /// The call site.
    pub at: CodeLoc,
    /// The generation to set while the callee runs.
    pub gen: GenId,
}

/// Failure to parse a serialized profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for ProfileParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "profile parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl Error for ProfileParseError {}

/// Failure to load a profile: either the file could not be read or its
/// contents did not parse.
#[derive(Debug)]
pub enum ProfileError {
    /// The file could not be read.
    Io(std::io::Error),
    /// The contents were not a valid profile.
    Parse(ProfileParseError),
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::Io(e) => write!(f, "cannot read profile: {e}"),
            ProfileError::Parse(e) => e.fmt(f),
        }
    }
}

impl Error for ProfileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ProfileError::Io(e) => Some(e),
            ProfileError::Parse(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for ProfileError {
    fn from(e: std::io::Error) -> Self {
        ProfileError::Io(e)
    }
}

impl From<ProfileParseError> for ProfileError {
    fn from(e: ProfileParseError) -> Self {
        ProfileError::Parse(e)
    }
}

/// The stale entries [`AllocationProfile::validate`] found: profile entries
/// whose locations no longer exist in the program (the application changed
/// between profiling and production, or the file was hand-edited).
///
/// Stale entries are harmless to skip — the affected allocations simply fall
/// back to the young generation, POLM2's safe default — but silently applying
/// a half-matching profile hides that the profile needs regenerating, so the
/// Instrumenter reports them.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfileValidation {
    /// `site` entries with no matching allocation instruction.
    pub stale_sites: Vec<PretenuredSite>,
    /// `call` entries with no matching call instruction.
    pub stale_gen_calls: Vec<GenCall>,
}

impl ProfileValidation {
    /// True if every profile entry matched the program.
    pub fn is_clean(&self) -> bool {
        self.stale_sites.is_empty() && self.stale_gen_calls.is_empty()
    }
}

/// A complete application allocation profile for one workload.
///
/// # Examples
///
/// ```
/// use polm2_core::AllocationProfile;
///
/// let text = "\
/// polm2-profile v1
/// site Memtable insert 42 gen 2 local
/// call Store put 10 gen 3
/// ";
/// let profile: AllocationProfile = text.parse()?;
/// assert_eq!(profile.sites().len(), 1);
/// assert_eq!(profile.gen_calls().len(), 1);
/// assert_eq!(profile.to_string().parse::<AllocationProfile>()?, profile);
/// # Ok::<(), polm2_core::ProfileParseError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AllocationProfile {
    sites: Vec<PretenuredSite>,
    gen_calls: Vec<GenCall>,
}

impl AllocationProfile {
    /// Creates an empty profile (everything young — the uninstrumented
    /// baseline).
    pub fn new() -> Self {
        AllocationProfile::default()
    }

    /// Adds a pretenured site. Entries are kept sorted by location so the
    /// in-memory representation is canonical: equality and the serialized
    /// text agree regardless of insertion order.
    pub fn add_site(&mut self, site: PretenuredSite) {
        if self.sites.contains(&site) {
            return;
        }
        let at = self
            .sites
            .partition_point(|s| (&s.loc, s.gen) <= (&site.loc, site.gen));
        self.sites.insert(at, site);
    }

    /// Adds a generation-setting call site (kept sorted; see
    /// [`add_site`](AllocationProfile::add_site)).
    pub fn add_gen_call(&mut self, call: GenCall) {
        if self.gen_calls.contains(&call) {
            return;
        }
        let at = self
            .gen_calls
            .partition_point(|c| (&c.at, c.gen) <= (&call.at, call.gen));
        self.gen_calls.insert(at, call);
    }

    /// The `@Gen`-annotated allocation sites.
    pub fn sites(&self) -> &[PretenuredSite] {
        &self.sites
    }

    /// The wrapped call sites.
    pub fn gen_calls(&self) -> &[GenCall] {
        &self.gen_calls
    }

    /// Distinct non-young generations the profile uses.
    pub fn generations_used(&self) -> Vec<GenId> {
        let mut gens: Vec<GenId> = self
            .sites
            .iter()
            .map(|s| s.gen)
            .chain(self.gen_calls.iter().map(|c| c.gen))
            .filter(|g| !g.is_young())
            .collect();
        gens.sort_unstable();
        gens.dedup();
        gens
    }

    /// The highest generation number used (0 when empty).
    pub fn max_gen(&self) -> GenId {
        self.generations_used()
            .last()
            .copied()
            .unwrap_or(GenId::YOUNG)
    }

    /// True if the profile changes nothing.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty() && self.gen_calls.is_empty()
    }

    /// Writes the profile to a file in the text format.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_string())
    }

    /// Reads a profile from a file.
    ///
    /// # Errors
    ///
    /// [`ProfileError::Io`] if the file cannot be read,
    /// [`ProfileError::Parse`] (with the line number) if its contents are not
    /// a valid profile.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, ProfileError> {
        let text = std::fs::read_to_string(path)?;
        Ok(text.parse::<AllocationProfile>()?)
    }

    /// Checks every entry against `program`: a `site` entry must name an
    /// allocation instruction and a `call` entry a call instruction that
    /// actually exist at that location.
    pub fn validate(&self, program: &Program) -> ProfileValidation {
        let mut alloc_locs = std::collections::HashSet::new();
        let mut call_locs = std::collections::HashSet::new();
        program.visit_instrs(|class, method, instr| match instr {
            Instr::Alloc { line, .. } => {
                alloc_locs.insert(CodeLoc::new(&class.name, &method.name, *line));
            }
            Instr::Call { line, .. } => {
                call_locs.insert(CodeLoc::new(&class.name, &method.name, *line));
            }
            _ => {}
        });
        ProfileValidation {
            stale_sites: self
                .sites
                .iter()
                .filter(|s| !alloc_locs.contains(&s.loc))
                .cloned()
                .collect(),
            stale_gen_calls: self
                .gen_calls
                .iter()
                .filter(|c| !call_locs.contains(&c.at))
                .cloned()
                .collect(),
        }
    }

    /// Splits the profile into the part that matches `program` and the stale
    /// remainder, so the Instrumenter can apply only entries that resolve
    /// (see [`crate::Instrumenter::checked`]).
    pub fn split_valid(&self, program: &Program) -> (AllocationProfile, ProfileValidation) {
        let stale = self.validate(program);
        if stale.is_clean() {
            return (self.clone(), stale);
        }
        let valid = AllocationProfile {
            sites: self
                .sites
                .iter()
                .filter(|s| !stale.stale_sites.contains(s))
                .cloned()
                .collect(),
            gen_calls: self
                .gen_calls
                .iter()
                .filter(|c| !stale.stale_gen_calls.contains(c))
                .cloned()
                .collect(),
        };
        (valid, stale)
    }

    /// Looks up the pretenured-site entry at `loc`.
    ///
    /// Entries are stored sorted by location (see
    /// [`add_site`](AllocationProfile::add_site)), so this is a binary
    /// search — the Instrumenter calls it once per allocation instruction.
    pub fn site_at(&self, loc: &CodeLoc) -> Option<&PretenuredSite> {
        let at = self.sites.partition_point(|s| s.loc < *loc);
        self.sites.get(at).filter(|s| s.loc == *loc)
    }

    /// Looks up the generation-call entry at `loc` (binary search, as with
    /// [`site_at`](AllocationProfile::site_at)).
    pub fn gen_call_at(&self, loc: &CodeLoc) -> Option<&GenCall> {
        let at = self.gen_calls.partition_point(|c| c.at < *loc);
        self.gen_calls.get(at).filter(|c| c.at == *loc)
    }

    /// True if any entry (site or call) lives in `class`.
    ///
    /// Locations sort by class first, so both lookups are binary searches;
    /// the Instrumenter uses this to skip whole classes the profile never
    /// mentions.
    pub fn mentions_class(&self, class: &str) -> bool {
        let site = self.sites.partition_point(|s| s.loc.class.as_str() < class);
        if self.sites.get(site).is_some_and(|s| s.loc.class == class) {
            return true;
        }
        let call = self
            .gen_calls
            .partition_point(|c| c.at.class.as_str() < class);
        self.gen_calls
            .get(call)
            .is_some_and(|c| c.at.class == class)
    }
}

impl fmt::Display for AllocationProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "polm2-profile v1")?;
        // Entries are stored sorted; emit sites then calls.
        for site in &self.sites {
            write!(
                f,
                "site {} {} {} gen {}",
                site.loc.class,
                site.loc.method,
                site.loc.line,
                site.gen.raw()
            )?;
            if site.local {
                write!(f, " local")?;
            }
            writeln!(f)?;
        }
        for call in &self.gen_calls {
            writeln!(
                f,
                "call {} {} {} gen {}",
                call.at.class,
                call.at.method,
                call.at.line,
                call.gen.raw()
            )?;
        }
        Ok(())
    }
}

impl FromStr for AllocationProfile {
    type Err = ProfileParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        // Integrity first: a flipped byte is reported as a checksum
        // mismatch, not as whatever directive the flip happened to mangle.
        verify_crc_footers(s)?;
        let mut lines = s.lines().enumerate();
        match lines.next() {
            Some((_, header)) if header.trim() == "polm2-profile v1" => {}
            Some((i, other)) => {
                return Err(ProfileParseError {
                    line: i + 1,
                    message: format!("expected header 'polm2-profile v1', found {other:?}"),
                })
            }
            None => {
                return Err(ProfileParseError {
                    line: 1,
                    message: "empty profile".to_string(),
                })
            }
        }
        let mut profile = AllocationProfile::new();
        for (i, line) in lines {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let parts: Vec<&str> = line.split_whitespace().collect();
            let err = |message: String| ProfileParseError {
                line: i + 1,
                message,
            };
            let parse_gen = |g: &str| -> Result<GenId, ProfileParseError> {
                let raw: u32 = g.parse().map_err(|_| err(format!("bad generation {g}")))?;
                if raw == 0 || raw > MAX_PROFILE_GEN {
                    return Err(err(format!(
                        "generation {raw} out of range (must be 1..={MAX_PROFILE_GEN})"
                    )));
                }
                Ok(GenId::new(raw))
            };
            match parts.as_slice() {
                ["site", class, method, line_no, "gen", g, rest @ ..] => {
                    let loc = CodeLoc::new(
                        *class,
                        *method,
                        line_no
                            .parse()
                            .map_err(|_| err(format!("bad line number {line_no}")))?,
                    );
                    let gen = parse_gen(g)?;
                    let local = match rest {
                        [] => false,
                        ["local"] => true,
                        other => return Err(err(format!("unexpected trailer {other:?}"))),
                    };
                    profile.add_site(PretenuredSite { loc, gen, local });
                }
                ["call", class, method, line_no, "gen", g] => {
                    let at = CodeLoc::new(
                        *class,
                        *method,
                        line_no
                            .parse()
                            .map_err(|_| err(format!("bad line number {line_no}")))?,
                    );
                    let gen = parse_gen(g)?;
                    profile.add_gen_call(GenCall { at, gen });
                }
                _ => return Err(err(format!("unrecognized directive: {line}"))),
            }
        }
        Ok(profile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AllocationProfile {
        let mut p = AllocationProfile::new();
        p.add_site(PretenuredSite {
            loc: CodeLoc::new("Cell", "create", 5),
            gen: GenId::new(2),
            local: false,
        });
        p.add_site(PretenuredSite {
            loc: CodeLoc::new("Index", "post", 9),
            gen: GenId::new(3),
            local: true,
        });
        p.add_gen_call(GenCall {
            at: CodeLoc::new("Store", "put", 10),
            gen: GenId::new(2),
        });
        p
    }

    #[test]
    fn round_trips_through_text() {
        let p = sample();
        let text = p.to_string();
        let parsed: AllocationProfile = text.parse().unwrap();
        assert_eq!(parsed, p);
    }

    #[test]
    fn generations_used_is_sorted_and_deduped() {
        let p = sample();
        assert_eq!(p.generations_used(), vec![GenId::new(2), GenId::new(3)]);
        assert_eq!(p.max_gen(), GenId::new(3));
        assert!(!p.is_empty());
        assert!(AllocationProfile::new().is_empty());
        assert_eq!(AllocationProfile::new().max_gen(), GenId::YOUNG);
    }

    #[test]
    fn lookups_by_location() {
        let p = sample();
        assert!(p.site_at(&CodeLoc::new("Cell", "create", 5)).is_some());
        assert!(p.site_at(&CodeLoc::new("Cell", "create", 6)).is_none());
        assert!(p.gen_call_at(&CodeLoc::new("Store", "put", 10)).is_some());
    }

    #[test]
    fn mentions_class_matches_sites_and_calls() {
        let p = sample();
        assert!(p.mentions_class("Cell"));
        assert!(p.mentions_class("Index"));
        assert!(p.mentions_class("Store"), "call-only classes count too");
        assert!(!p.mentions_class("Row"));
        // Prefix of a mentioned class is not a mention.
        assert!(!p.mentions_class("Cel"));
        assert!(!p.mentions_class("Cella"));
        assert!(!AllocationProfile::new().mentions_class("Cell"));
    }

    #[test]
    fn lookups_agree_with_linear_scan() {
        // Several entries per class, several classes — the binary searches
        // must find exactly what the original linear scans found.
        let mut p = AllocationProfile::new();
        for class in ["A", "B", "C"] {
            for line in [9, 3, 7, 1] {
                p.add_site(PretenuredSite {
                    loc: CodeLoc::new(class, "m", line),
                    gen: GenId::new(2),
                    local: false,
                });
                p.add_gen_call(GenCall {
                    at: CodeLoc::new(class, "call", line),
                    gen: GenId::new(2),
                });
            }
        }
        for class in ["A", "B", "C"] {
            for line in 0..11 {
                let loc = CodeLoc::new(class, "m", line);
                assert_eq!(
                    p.site_at(&loc),
                    p.sites().iter().find(|s| s.loc == loc),
                    "{loc:?}"
                );
                let at = CodeLoc::new(class, "call", line);
                assert_eq!(
                    p.gen_call_at(&at),
                    p.gen_calls().iter().find(|c| c.at == at),
                    "{at:?}"
                );
            }
        }
    }

    #[test]
    fn duplicate_entries_are_ignored() {
        let mut p = sample();
        let before = p.sites().len();
        p.add_site(p.sites()[0].clone());
        assert_eq!(p.sites().len(), before);
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!("".parse::<AllocationProfile>().is_err());
        assert!("wrong header".parse::<AllocationProfile>().is_err());
        assert!("polm2-profile v1\nsite A b x gen 2"
            .parse::<AllocationProfile>()
            .is_err());
        assert!("polm2-profile v1\nsite A b 1 gen x"
            .parse::<AllocationProfile>()
            .is_err());
        assert!("polm2-profile v1\nfrob A b 1"
            .parse::<AllocationProfile>()
            .is_err());
        assert!("polm2-profile v1\nsite A b 1 gen 2 weird"
            .parse::<AllocationProfile>()
            .is_err());
        let err = "polm2-profile v1\nfrob"
            .parse::<AllocationProfile>()
            .unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn save_load_round_trip() {
        let p = sample();
        let path = std::env::temp_dir().join("polm2_profile_roundtrip.profile");
        p.save(&path).unwrap();
        let loaded = AllocationProfile::load(&path).unwrap();
        assert_eq!(loaded, p);
        std::fs::remove_file(&path).ok();
        assert!(AllocationProfile::load("/nonexistent/path.profile").is_err());
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let text = "polm2-profile v1\n\n# a comment\nsite A b 1 gen 2\n";
        let p: AllocationProfile = text.parse().unwrap();
        assert_eq!(p.sites().len(), 1);
    }

    #[test]
    fn truncated_file_is_a_typed_error_not_a_panic() {
        // A partially-written file: the last line was cut mid-directive.
        let text = "polm2-profile v1\nsite A b 1 gen 2\nsite A b 2 ge";
        let err = text.parse::<AllocationProfile>().unwrap_err();
        assert_eq!(err.line, 3);
        // Truncation inside the header is also typed.
        assert!("polm2-prof".parse::<AllocationProfile>().is_err());
    }

    #[test]
    fn garbage_lines_are_typed_errors() {
        for garbage in [
            "polm2-profile v1\n\u{0}\u{1}\u{2}",
            "polm2-profile v1\nsite A b 1 gen 2\n!!! not a directive",
            "polm2-profile v1\ncall A b one gen 2",
            "polm2-profile v1\nsite A b 18446744073709551616 gen 2",
        ] {
            assert!(
                garbage.parse::<AllocationProfile>().is_err(),
                "{garbage:?} must not parse"
            );
        }
    }

    #[test]
    fn duplicate_lines_collapse_to_one_entry() {
        let text = "polm2-profile v1\nsite A b 1 gen 2\nsite A b 1 gen 2\ncall C d 3 gen 2\ncall C d 3 gen 2\n";
        let p: AllocationProfile = text.parse().unwrap();
        assert_eq!(p.sites().len(), 1);
        assert_eq!(p.gen_calls().len(), 1);
    }

    #[test]
    fn out_of_range_generations_are_rejected() {
        assert!("polm2-profile v1\nsite A b 1 gen 0"
            .parse::<AllocationProfile>()
            .is_err());
        assert!("polm2-profile v1\nsite A b 1 gen 65"
            .parse::<AllocationProfile>()
            .is_err());
        assert!("polm2-profile v1\ncall A b 1 gen 4000000000"
            .parse::<AllocationProfile>()
            .is_err());
        let err = "polm2-profile v1\nsite A b 1 gen 9999"
            .parse::<AllocationProfile>()
            .unwrap_err();
        assert!(err.message.contains("out of range"), "{}", err.message);
        // The boundary itself is fine.
        let p: AllocationProfile = format!("polm2-profile v1\nsite A b 1 gen {MAX_PROFILE_GEN}")
            .parse()
            .unwrap();
        assert_eq!(p.max_gen(), GenId::new(MAX_PROFILE_GEN));
    }

    #[test]
    fn validate_reports_stale_entries_and_split_strips_them() {
        use polm2_runtime::{ClassDef, Instr, MethodDef, SizeSpec};
        let mut program = Program::new();
        program.add_class(ClassDef::new("Cell").with_method(
            MethodDef::new("create").push(Instr::alloc("Cell", SizeSpec::Fixed(64), 5)),
        ));
        program.add_class(
            ClassDef::new("Store")
                .with_method(MethodDef::new("put").push(Instr::call("Cell", "create", 10))),
        );

        let mut p = AllocationProfile::new();
        p.add_site(PretenuredSite {
            loc: CodeLoc::new("Cell", "create", 5),
            gen: GenId::new(2),
            local: false,
        });
        p.add_site(PretenuredSite {
            loc: CodeLoc::new("Gone", "away", 1),
            gen: GenId::new(2),
            local: true,
        });
        p.add_gen_call(GenCall {
            at: CodeLoc::new("Store", "put", 10),
            gen: GenId::new(2),
        });
        p.add_gen_call(GenCall {
            at: CodeLoc::new("Store", "put", 99),
            gen: GenId::new(2),
        });

        let stale = p.validate(&program);
        assert_eq!(stale.stale_sites.len(), 1);
        assert_eq!(stale.stale_sites[0].loc, CodeLoc::new("Gone", "away", 1));
        assert_eq!(stale.stale_gen_calls.len(), 1);
        assert_eq!(
            stale.stale_gen_calls[0].at,
            CodeLoc::new("Store", "put", 99)
        );
        assert!(!stale.is_clean());

        let (valid, stale2) = p.split_valid(&program);
        assert_eq!(stale2, stale);
        assert_eq!(valid.sites().len(), 1);
        assert_eq!(valid.gen_calls().len(), 1);
        assert!(valid.validate(&program).is_clean());
    }

    #[test]
    fn crc_footer_round_trips_and_catches_every_bit_flip() {
        let mut text = sample().to_string();
        text.push_str("# polm2-faults snapshots-failed 2\n");
        seal_profile_text(&mut text);
        assert!(text.lines().last().unwrap().starts_with(CRC_FOOTER_PREFIX));
        let parsed: AllocationProfile = text.parse().expect("sealed text parses");
        assert_eq!(parsed, sample());

        // Any single flipped bit before the footer is a parse error.
        let bytes = text.as_bytes();
        let footer_at = text.rfind(CRC_FOOTER_PREFIX).unwrap();
        for bit in (0..footer_at * 8).step_by(7) {
            let mut mangled = bytes.to_vec();
            mangled[bit / 8] ^= 1 << (bit % 8);
            let Ok(mangled) = String::from_utf8(mangled) else {
                continue;
            };
            assert!(
                mangled.parse::<AllocationProfile>().is_err(),
                "flip of bit {bit} went undetected"
            );
        }

        // Tampering with the footer itself is also an error.
        let mut bad = text.clone();
        bad.truncate(footer_at);
        bad.push_str("# polm2-crc 00000000\n");
        let err = bad.parse::<AllocationProfile>().unwrap_err();
        assert!(err.message.contains("checksum mismatch"), "{}", err.message);

        // Unsealed text still parses (the footer is opt-in).
        let plain = sample().to_string();
        assert!(plain.parse::<AllocationProfile>().is_ok());
    }

    #[test]
    fn load_distinguishes_io_from_parse_failures() {
        assert!(matches!(
            AllocationProfile::load("/nonexistent/path.profile"),
            Err(ProfileError::Io(_))
        ));
        let path = std::env::temp_dir().join("polm2_profile_corrupt.profile");
        std::fs::write(&path, "polm2-profile v1\nsite A b 1 gen 9999\n").unwrap();
        assert!(matches!(
            AllocationProfile::load(&path),
            Err(ProfileError::Parse(_))
        ));
        std::fs::remove_file(&path).ok();
    }
}
