//! Frame interning: dense `u32` symbol ids for stack-trace frames.
//!
//! The Recorder interns every [`TraceFrame`] it sees into a [`SymbolId`] at
//! record time, so everything downstream — trace tables, the Analyzer's
//! per-trace loops, the STTree — operates on dense integer ids instead of
//! hashing frame structs or cloning [`CodeLoc`] strings in hot loops. A
//! symbol resolves back to its frame (and, given the loaded program, to a
//! human-readable [`CodeLoc`]) only at output boundaries.

use polm2_heap::IdHashMap;
use polm2_runtime::{CodeLoc, LoadedProgram, TraceFrame};

/// Dense id of an interned stack-trace frame.
///
/// Within one [`FrameInterner`], two frames get the same symbol iff they are
/// the same `(class_idx, method_idx, line)` triple — which, for frames of one
/// loaded program, is iff they resolve to the same [`CodeLoc`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SymbolId(u32);

impl SymbolId {
    /// The raw index.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// The raw index widened for table addressing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

/// Interns [`TraceFrame`]s into dense [`SymbolId`]s.
#[derive(Debug, Clone, Default)]
pub struct FrameInterner {
    frames: Vec<TraceFrame>,
    /// Keyed by the frame packed into a `u64`; hashed with the heap's fast
    /// id hasher — this map is hit once per frame of every recorded
    /// allocation.
    by_key: IdHashMap<u64, SymbolId>,
}

/// A frame packed into one integer key (16 bits class, 16 bits method,
/// 32 bits line) — lossless, so key equality is frame equality.
fn pack(frame: TraceFrame) -> u64 {
    (u64::from(frame.class_idx) << 48) | (u64::from(frame.method_idx) << 32) | u64::from(frame.line)
}

impl FrameInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        FrameInterner::default()
    }

    /// Interns a frame, returning its (stable) symbol.
    pub fn intern(&mut self, frame: TraceFrame) -> SymbolId {
        match self.by_key.get(&pack(frame)) {
            Some(&sym) => sym,
            None => {
                let sym = SymbolId(self.frames.len() as u32);
                self.by_key.insert(pack(frame), sym);
                self.frames.push(frame);
                sym
            }
        }
    }

    /// The frame a symbol stands for.
    ///
    /// # Panics
    ///
    /// Panics if `sym` was not produced by this interner.
    pub fn resolve(&self, sym: SymbolId) -> TraceFrame {
        self.frames[sym.index()]
    }

    /// Resolves a symbol to a human-readable location.
    ///
    /// # Panics
    ///
    /// Panics if `sym` is foreign to this interner or its frame does not
    /// belong to `program`.
    pub fn code_loc(&self, sym: SymbolId, program: &LoadedProgram) -> CodeLoc {
        program.code_loc(self.resolve(sym))
    }

    /// Resolves every interned frame at once: a table of locations indexed
    /// by [`SymbolId::index`]. Built once per analysis so hot loops clone
    /// from the table instead of re-resolving frames.
    ///
    /// # Panics
    ///
    /// Panics if any interned frame does not belong to `program`.
    pub fn loc_table(&self, program: &LoadedProgram) -> Vec<CodeLoc> {
        self.frames.iter().map(|&f| program.code_loc(f)).collect()
    }

    /// Number of distinct frames interned.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(class_idx: u16, method_idx: u16, line: u32) -> TraceFrame {
        TraceFrame {
            class_idx,
            method_idx,
            line,
        }
    }

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut t = FrameInterner::new();
        let a = t.intern(frame(0, 0, 1));
        let b = t.intern(frame(0, 0, 2));
        let a2 = t.intern(frame(0, 0, 1));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(a.raw(), 0);
        assert_eq!(b.raw(), 1);
        assert_eq!(t.len(), 2);
        assert_eq!(t.resolve(b), frame(0, 0, 2));
    }

    #[test]
    fn packing_distinguishes_all_fields() {
        let mut t = FrameInterner::new();
        let syms = [
            t.intern(frame(1, 0, 7)),
            t.intern(frame(0, 1, 7)),
            t.intern(frame(0, 0, 7)),
            t.intern(frame(1, 1, 8)),
        ];
        let distinct: std::collections::HashSet<_> = syms.iter().collect();
        assert_eq!(distinct.len(), syms.len());
    }
}
