//! The stack-trace tree (STTree) — paper §3.3, Figure 2, Algorithm 1.
//!
//! Nodes carry the paper's 4-tuple: (class, method, line) — a [`CodeLoc`] —
//! plus a target generation. Interior nodes are call sites; leaves are
//! allocation sites. One allocation site reached through call paths with
//! *different* estimated generations is a **conflict**; it is resolved by
//! pushing each path's generation up to the first ancestor whose location
//! distinguishes the paths — that call site gets a `setGeneration` wrapper.
//!
//! Locations are interned into dense `u32` ids on first sight, so every
//! traversal (insertion, conflict detection, conflict resolution, hoisting)
//! compares integers; [`CodeLoc`] strings are cloned only at the public
//! output boundary ([`Conflict`], [`Resolution`], [`LeafView`]).

use std::collections::HashMap;

use polm2_heap::{GenId, IdHashMap, IdHashSet};
use polm2_runtime::CodeLoc;

/// Dense id of a location interned in one tree.
type LocId = u32;

#[derive(Debug)]
struct Node {
    loc: LocId,
    parent: Option<u32>,
    children: Vec<u32>,
    /// `Some` for allocation-site leaves: the estimated target generation.
    leaf_gen: Option<GenId>,
}

/// One conflict: an allocation-site location reached through paths with
/// different target generations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Conflict {
    /// The shared allocation-site location.
    pub loc: CodeLoc,
    /// The conflicting leaf nodes (indices into the tree).
    members: Vec<usize>,
}

impl Conflict {
    /// Number of distinct paths involved.
    pub fn path_count(&self) -> usize {
        self.members.len()
    }
}

/// One resolved conflict member: wrap the call at `at` with
/// `setGeneration(gen)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resolution {
    /// The conflicted allocation site.
    pub leaf: CodeLoc,
    /// The generation this path's objects should go to.
    pub gen: GenId,
    /// The distinguishing ancestor call site to wrap.
    pub at: CodeLoc,
}

/// A leaf of the tree (an allocation site reached through one call path).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeafView {
    /// Node index (stable for this tree).
    pub idx: usize,
    /// The allocation-site location.
    pub loc: CodeLoc,
    /// The estimated target generation.
    pub gen: GenId,
    /// The interned location id (crate-internal fast path).
    pub(crate) sym: LocId,
}

/// The stack-trace tree.
///
/// # Examples
///
/// ```
/// use polm2_core::SttTree;
/// use polm2_heap::GenId;
/// use polm2_runtime::CodeLoc;
///
/// let mut tree = SttTree::new();
/// // Two different callers reach the same allocation site with different
/// // lifetimes — the paper's Listing 1 situation.
/// let site = CodeLoc::new("Class1", "methodD", 4);
/// tree.insert_path(
///     &[CodeLoc::new("Class1", "methodB", 21), site.clone()],
///     GenId::new(2),
/// );
/// tree.insert_path(
///     &[CodeLoc::new("Class1", "methodB", 26), site.clone()],
///     GenId::new(3),
/// );
/// let conflicts = tree.detect_conflicts();
/// assert_eq!(conflicts.len(), 1);
/// let resolutions = tree.solve_conflicts(&conflicts);
/// // Each path resolves at its (distinct) methodB call site.
/// assert_eq!(resolutions.len(), 2);
/// assert_ne!(resolutions[0].at, resolutions[1].at);
/// ```
#[derive(Debug, Default)]
pub struct SttTree {
    nodes: Vec<Node>,
    /// Interned locations (id → location).
    locs: Vec<CodeLoc>,
    /// Location intern map (location → id).
    by_loc: HashMap<CodeLoc, LocId>,
    /// Children of the synthetic root, by interned location.
    roots: IdHashMap<LocId, u32>,
}

impl SttTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        SttTree::default()
    }

    /// Interns `loc`, cloning it only on first sight.
    fn intern_loc(&mut self, loc: &CodeLoc) -> LocId {
        match self.by_loc.get(loc) {
            Some(&id) => id,
            None => {
                let id = self.locs.len() as LocId;
                self.locs.push(loc.clone());
                self.by_loc.insert(loc.clone(), id);
                id
            }
        }
    }

    /// The interned id of `loc`, if any path mentions it.
    pub(crate) fn loc_id(&self, loc: &CodeLoc) -> Option<LocId> {
        self.by_loc.get(loc).copied()
    }

    /// The location an interned id stands for.
    pub(crate) fn loc_at(&self, id: LocId) -> &CodeLoc {
        &self.locs[id as usize]
    }

    /// Inserts one allocation path (outermost frame first; the last element
    /// is the allocation site) with its estimated target generation.
    ///
    /// Re-inserting an identical path keeps the older (higher) generation.
    ///
    /// # Panics
    ///
    /// Panics if `path` is empty.
    pub fn insert_path(&mut self, path: &[CodeLoc], gen: GenId) {
        assert!(!path.is_empty(), "allocation path cannot be empty");
        let mut current: Option<u32> = None;
        for loc in path {
            let loc = self.intern_loc(loc);
            let next = match current {
                None => match self.roots.get(&loc) {
                    Some(&idx) => idx,
                    None => {
                        let idx = self.push_node(loc, None);
                        self.roots.insert(loc, idx);
                        idx
                    }
                },
                Some(parent) => {
                    match self.nodes[parent as usize]
                        .children
                        .iter()
                        .copied()
                        .find(|&c| self.nodes[c as usize].loc == loc)
                    {
                        Some(idx) => idx,
                        None => {
                            let idx = self.push_node(loc, Some(parent));
                            self.nodes[parent as usize].children.push(idx);
                            idx
                        }
                    }
                }
            };
            current = Some(next);
        }
        let leaf = current.expect("non-empty path");
        let slot = &mut self.nodes[leaf as usize].leaf_gen;
        *slot = Some(match *slot {
            Some(existing) => existing.max(gen),
            None => gen,
        });
    }

    fn push_node(&mut self, loc: LocId, parent: Option<u32>) -> u32 {
        let idx = self.nodes.len() as u32;
        self.nodes.push(Node {
            loc,
            parent,
            children: Vec::new(),
            leaf_gen: None,
        });
        idx
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if no path has been inserted.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All allocation-site leaves.
    pub fn leaves(&self) -> Vec<LeafView> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(idx, n)| {
                n.leaf_gen.map(|gen| LeafView {
                    idx,
                    loc: self.locs[n.loc as usize].clone(),
                    gen,
                    sym: n.loc,
                })
            })
            .collect()
    }

    /// Algorithm 1, `Detect Conflicts`: leaves sharing a location but not a
    /// target generation.
    pub fn detect_conflicts(&self) -> Vec<Conflict> {
        let mut groups: IdHashMap<LocId, Vec<usize>> = IdHashMap::default();
        for (idx, node) in self.nodes.iter().enumerate() {
            if node.leaf_gen.is_some() {
                groups.entry(node.loc).or_default().push(idx);
            }
        }
        let mut conflicts: Vec<Conflict> = groups
            .into_iter()
            .filter(|(_, members)| {
                let mut gens: Vec<GenId> = members
                    .iter()
                    .map(|&m| self.nodes[m].leaf_gen.expect("leaf"))
                    .collect();
                gens.sort_unstable();
                gens.dedup();
                members.len() > 1 && gens.len() > 1
            })
            .map(|(loc, members)| Conflict {
                loc: self.locs[loc as usize].clone(),
                members,
            })
            .collect();
        conflicts.sort_by(|a, b| a.loc.cmp(&b.loc));
        conflicts
    }

    /// Algorithm 1, `Solve Conflicts`: each conflicting leaf pushes its
    /// target generation up its allocation path until the paths' current
    /// nodes all point at distinct code locations.
    ///
    /// Conflicts are independent of each other, so a slice of conflicts can
    /// be solved shard-by-shard and the outputs concatenated — the Analyzer's
    /// worker pool relies on this.
    pub fn solve_conflicts(&self, conflicts: &[Conflict]) -> Vec<Resolution> {
        let mut out = Vec::new();
        for conflict in conflicts {
            // One cursor per conflicting path.
            let mut cursors: Vec<usize> = conflict.members.clone();
            loop {
                let mut counts: IdHashMap<LocId, usize> = IdHashMap::default();
                for &c in &cursors {
                    *counts.entry(self.nodes[c].loc).or_insert(0) += 1;
                }
                let mut moved = false;
                for cursor in &mut cursors {
                    if counts[&self.nodes[*cursor].loc] > 1 {
                        if let Some(parent) = self.nodes[*cursor].parent {
                            *cursor = parent as usize;
                            moved = true;
                        }
                        // A cursor at a top-level frame with a still-shared
                        // location cannot move further; it resolves where it
                        // stands (distinct entry points make this rare).
                    }
                }
                if !moved {
                    break;
                }
            }
            for (member, cursor) in conflict.members.iter().zip(cursors) {
                out.push(Resolution {
                    leaf: conflict.loc.clone(),
                    gen: self.nodes[*member]
                        .leaf_gen
                        .expect("conflict member is a leaf"),
                    at: self.locs[self.nodes[cursor].loc as usize].clone(),
                });
            }
        }
        out
    }

    /// The §4.4 optimization: the highest ancestor whose subtree's leaf
    /// generations are exactly `{gen(leaf)}` — the cheapest place to set the
    /// target generation once for a whole subtree. Returns the chosen
    /// location and whether it is the leaf itself.
    ///
    /// Ordinary young leaves do not block hoisting (they carry no `@Gen`
    /// annotation, so the ambient target generation cannot affect them) —
    /// but leaves whose location is in `blocking_locs` (sites that *are*
    /// `@Gen`-annotated because some other path conflicts) do: hoisting over
    /// them would silently retarget their allocations.
    ///
    /// # Panics
    ///
    /// Panics if `leaf_idx` is not a leaf of this tree.
    pub fn hoist_point(
        &self,
        leaf_idx: usize,
        blocking_locs: &std::collections::HashSet<CodeLoc>,
    ) -> (CodeLoc, bool) {
        let blocking: IdHashSet<LocId> = blocking_locs
            .iter()
            .filter_map(|loc| self.loc_id(loc))
            .collect();
        let (at, is_leaf) = self.hoist_point_sym(leaf_idx, &blocking);
        (self.locs[at as usize].clone(), is_leaf)
    }

    /// [`hoist_point`](SttTree::hoist_point) on interned ids (the Analyzer's
    /// hot path): blocking locations and the result are dense loc ids.
    pub(crate) fn hoist_point_sym(
        &self,
        leaf_idx: usize,
        blocking: &IdHashSet<LocId>,
    ) -> (LocId, bool) {
        let gen = self.nodes[leaf_idx]
            .leaf_gen
            .expect("hoist_point needs a leaf");
        let mut best = leaf_idx;
        let mut cursor = leaf_idx;
        while let Some(parent) = self.nodes[cursor].parent {
            let gens = self.subtree_gens(parent as usize, blocking);
            if gens.len() == 1 && gens[0] == gen {
                best = parent as usize;
                cursor = parent as usize;
            } else {
                break;
            }
        }
        (self.nodes[best].loc, best == leaf_idx)
    }

    /// Distinct effective leaf generations under `node` (inclusive), sorted.
    /// Young leaves count only when their location is `@Gen`-annotated
    /// elsewhere (`blocking`).
    fn subtree_gens(&self, node: usize, blocking: &IdHashSet<LocId>) -> Vec<GenId> {
        let mut gens = Vec::new();
        let mut stack = vec![node];
        while let Some(n) = stack.pop() {
            if let Some(g) = self.nodes[n].leaf_gen {
                if !g.is_young() || blocking.contains(&self.nodes[n].loc) {
                    gens.push(g);
                }
            }
            stack.extend(self.nodes[n].children.iter().map(|&c| c as usize));
        }
        gens.sort_unstable();
        gens.dedup();
        gens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loc(m: &str, line: u32) -> CodeLoc {
        CodeLoc::new("C", m, line)
    }

    /// The paper's Listing 1 / Figure 2 shape: methodA -> methodB branches
    /// to two methodC call sites, both reaching methodD's allocation, with
    /// an extra in-methodC temporary allocation.
    fn paper_tree() -> SttTree {
        let mut t = SttTree::new();
        let d = loc("methodD", 4);
        // methodB line 21 path (gen 2).
        t.insert_path(
            &[
                loc("methodA", 34),
                loc("methodB", 21),
                loc("methodC", 8),
                d.clone(),
            ],
            GenId::new(2),
        );
        // methodB line 26 path (gen 3).
        t.insert_path(
            &[
                loc("methodA", 34),
                loc("methodB", 26),
                loc("methodC", 8),
                d.clone(),
            ],
            GenId::new(3),
        );
        // The tmp allocation inside methodC's if (gen 1), via line 21 only.
        t.insert_path(
            &[
                loc("methodA", 34),
                loc("methodB", 21),
                loc("methodC", 10),
                d.clone(),
            ],
            GenId::new(1),
        );
        t
    }

    #[test]
    fn insert_shares_prefixes() {
        let t = paper_tree();
        // methodA:34 is shared; methodB:21 shared by two paths.
        // Nodes: A34, B21, C8, D4, B26, C8', D4', C10, D4'' = 9.
        assert_eq!(t.len(), 9);
        assert_eq!(t.leaves().len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn interning_is_shared_across_paths() {
        let t = paper_tree();
        // 9 nodes but only 6 distinct locations: A34, B21, B26, C8, C10, D4.
        assert_eq!(t.locs.len(), 6);
        assert!(t.loc_id(&loc("methodD", 4)).is_some());
        assert!(t.loc_id(&loc("methodD", 99)).is_none());
    }

    #[test]
    fn detects_the_methodd_conflict() {
        let t = paper_tree();
        let conflicts = t.detect_conflicts();
        assert_eq!(conflicts.len(), 1);
        assert_eq!(conflicts[0].loc, loc("methodD", 4));
        assert_eq!(conflicts[0].path_count(), 3);
    }

    #[test]
    fn resolution_finds_distinguishing_ancestors() {
        let t = paper_tree();
        let resolutions = t.solve_conflicts(&t.detect_conflicts());
        assert_eq!(resolutions.len(), 3);
        // The gen1 path diverges immediately at methodC line 10; the gen2
        // and gen3 paths share the methodC:8 location, so they walk past it
        // up to the two distinct methodB call lines — the paper's Listing 2
        // places the setGeneration calls exactly there (lines 20 and 25).
        let find = |g: u32| resolutions.iter().find(|r| r.gen == GenId::new(g)).unwrap();
        assert_eq!(find(1).at, loc("methodC", 10));
        assert_eq!(find(2).at, loc("methodB", 21));
        assert_eq!(find(3).at, loc("methodB", 26));
    }

    #[test]
    fn sharded_solving_matches_whole_slice_solving() {
        let mut t = paper_tree();
        // A second, unrelated conflict.
        let e = loc("methodE", 7);
        t.insert_path(&[loc("methodX", 1), e.clone()], GenId::new(2));
        t.insert_path(&[loc("methodY", 2), e.clone()], GenId::new(4));
        let conflicts = t.detect_conflicts();
        assert_eq!(conflicts.len(), 2);
        let whole = t.solve_conflicts(&conflicts);
        let mut sharded = t.solve_conflicts(&conflicts[..1]);
        sharded.extend(t.solve_conflicts(&conflicts[1..]));
        assert_eq!(whole, sharded);
    }

    #[test]
    fn identical_generations_are_not_conflicts() {
        let mut t = SttTree::new();
        let d = loc("make", 4);
        t.insert_path(&[loc("x", 1), d.clone()], GenId::new(2));
        t.insert_path(&[loc("y", 1), d.clone()], GenId::new(2));
        assert!(t.detect_conflicts().is_empty());
    }

    #[test]
    fn single_path_site_has_no_conflict() {
        let mut t = SttTree::new();
        t.insert_path(&[loc("x", 1), loc("make", 4)], GenId::new(2));
        assert!(t.detect_conflicts().is_empty());
    }

    #[test]
    fn reinsert_keeps_older_generation() {
        let mut t = SttTree::new();
        let path = [loc("x", 1), loc("make", 4)];
        t.insert_path(&path, GenId::new(2));
        t.insert_path(&path, GenId::new(1));
        assert_eq!(t.leaves()[0].gen, GenId::new(2));
        assert_eq!(t.leaves().len(), 1);
    }

    #[test]
    fn hoisting_stops_at_mixed_subtrees() {
        let mut t = SttTree::new();
        // Two sites under the same caller, same gen -> hoist to the caller.
        t.insert_path(&[loc("run", 1), loc("makeA", 4)], GenId::new(2));
        t.insert_path(&[loc("run", 1), loc("makeB", 9)], GenId::new(2));
        let none = std::collections::HashSet::new();
        let leaves = t.leaves();
        for leaf in &leaves {
            let (at, is_leaf) = t.hoist_point(leaf.idx, &none);
            assert_eq!(at, loc("run", 1));
            assert!(!is_leaf);
        }
        // Add a different-gen site under the same caller -> no more hoisting.
        t.insert_path(&[loc("run", 1), loc("makeC", 12)], GenId::new(3));
        for leaf in t.leaves() {
            let (at, is_leaf) = t.hoist_point(leaf.idx, &none);
            assert_eq!(at, leaf.loc, "mixed subtree forces site-local set");
            assert!(is_leaf);
        }
    }

    #[test]
    #[should_panic(expected = "cannot be empty")]
    fn empty_path_panics() {
        SttTree::new().insert_path(&[], GenId::YOUNG);
    }
}
