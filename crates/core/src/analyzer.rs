//! The Analyzer: from allocation records + snapshots to an allocation
//! profile (paper §3.3).

use std::collections::{BTreeMap, HashMap};

use polm2_heap::{GenId, IdentityHash};
use polm2_runtime::{CodeLoc, LoadedProgram};
use polm2_snapshot::SnapshotSeries;

use crate::recorder::{AllocationRecords, TraceId};
use crate::sttree::{Conflict, Resolution, SttTree};
use crate::{AllocationProfile, GenCall, PretenuredSite};

/// Analyzer tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalyzerConfig {
    /// A trace whose objects typically survive fewer snapshots than this
    /// stays in the young generation (its objects die young enough for the
    /// normal young collection to handle them).
    pub min_survivals: u32,
    /// Traces with fewer recorded objects than this are left young — too
    /// little evidence to pretenure (misplacing rare allocations costs more
    /// than it saves).
    pub min_objects: u64,
    /// With fewer snapshots than this in the whole series, no trace is
    /// pretenured at all: lifetime estimates from one (or zero) snapshots
    /// are guesses, and the safe degradation is the young-generation
    /// default. Traces demoted by this guard are counted in
    /// [`AnalysisOutcome::demoted_traces`].
    pub min_snapshots: u32,
}

impl Default for AnalyzerConfig {
    fn default() -> Self {
        AnalyzerConfig {
            min_survivals: 2,
            min_objects: 4,
            min_snapshots: 2,
        }
    }
}

/// Lifetime statistics for one allocation path.
#[derive(Debug, Clone)]
pub struct TraceLifetime {
    /// The trace.
    pub trace: TraceId,
    /// The allocation path (outermost frame first).
    pub path: Vec<CodeLoc>,
    /// survivals → object count: the paper's buckets (§3.3) — bucket *k*
    /// holds objects that appeared in *k* snapshots.
    pub histogram: BTreeMap<u32, u64>,
    /// The typical survival count: the weighted median of the buckets.
    ///
    /// The paper takes the bucket "most objects" fall into (the mode); for
    /// cohort lifetimes (a memtable's cells die together at flush,
    /// regardless of birth time) the survival distribution is nearly
    /// uniform, making the mode a coin-flip between adjacent buckets. The
    /// median estimates the same "typical lifetime" robustly.
    pub typical_survivals: u32,
    /// Objects recorded through this path.
    pub objects: u64,
    /// The generation the analyzer assigned.
    pub gen: GenId,
}

/// Per-site lifetime distributions (the "application allocation profile"
/// §3.3 derives generations from).
#[derive(Debug, Clone, Default)]
pub struct SiteLifetimes {
    traces: Vec<TraceLifetime>,
}

impl SiteLifetimes {
    /// All per-path lifetime records.
    pub fn traces(&self) -> &[TraceLifetime] {
        &self.traces
    }

    /// Lifetime records whose allocation site is `loc`.
    pub fn at_site<'a>(&'a self, loc: &'a CodeLoc) -> impl Iterator<Item = &'a TraceLifetime> {
        self.traces
            .iter()
            .filter(move |t| t.path.last() == Some(loc))
    }
}

/// Everything the analysis produced.
#[derive(Debug, Clone)]
pub struct AnalysisOutcome {
    /// The profile to feed the Instrumenter.
    pub profile: AllocationProfile,
    /// Per-path lifetime distributions.
    pub lifetimes: SiteLifetimes,
    /// Conflicts detected (paper Table 1's "# Conflicts Encountered").
    pub conflicts: Vec<Conflict>,
    /// How each conflict path was resolved.
    pub resolutions: Vec<Resolution>,
    /// Traces that had enough evidence to pretenure but were demoted to the
    /// young generation because the run was under-observed (fewer than
    /// [`AnalyzerConfig::min_snapshots`] snapshots).
    pub demoted_traces: u64,
}

/// The offline analyzer.
#[derive(Debug, Clone, Default)]
pub struct Analyzer {
    config: AnalyzerConfig,
}

impl Analyzer {
    /// Creates an analyzer with the given tuning.
    pub fn new(config: AnalyzerConfig) -> Self {
        Analyzer { config }
    }

    /// Runs the full §3.3 pipeline:
    ///
    /// 1. count, per recorded object, the number of snapshots it appears in
    ///    (the bucket walk);
    /// 2. per allocation path, find the survivor-mass mode and map it to a
    ///    target generation (log₂ quantization: lifetimes within 2× share a
    ///    generation);
    /// 3. build the STTree, detect conflicts, resolve them (Algorithm 1);
    /// 4. assemble the profile with the §4.4 subtree-hoisting optimization.
    pub fn analyze(
        &self,
        records: &AllocationRecords,
        snapshots: &SnapshotSeries,
        program: &LoadedProgram,
    ) -> AnalysisOutcome {
        // Step 1: survivals per object hash.
        let mut survivals: polm2_heap::IdHashMap<IdentityHash, u32> =
            polm2_heap::IdHashMap::default();
        for snapshot in snapshots.snapshots() {
            for &hash in snapshot.hashes() {
                *survivals.entry(hash).or_insert(0) += 1;
            }
        }

        // Step 2: per-trace histograms, modes, and generation classes.
        let under_observed = (snapshots.len() as u32) < self.config.min_snapshots;
        let mut demoted_traces = 0u64;
        let mut lifetimes = Vec::new();
        let mut classes: Vec<u32> = Vec::new(); // distinct log2 lifetime classes
        for trace in records.trace_ids() {
            let stream = records.stream(trace);
            let mut histogram: BTreeMap<u32, u64> = BTreeMap::new();
            for hash in stream {
                let s = survivals.get(hash).copied().unwrap_or(0);
                *histogram.entry(s).or_insert(0) += 1;
            }
            let objects = stream.len() as u64;
            let typical_survivals = {
                let mut remaining = objects.div_ceil(2);
                let mut median = 0;
                for (&s, &count) in &histogram {
                    if count >= remaining {
                        median = s;
                        break;
                    }
                    remaining -= count;
                }
                median
            };
            let path = records.resolve_trace(trace, program);
            let class = if objects < self.config.min_objects
                || typical_survivals < self.config.min_survivals
            {
                None
            } else if under_observed {
                // Enough evidence to pretenure in a healthy run, but too few
                // snapshots actually arrived (lost captures): fall back to
                // the young default and count the demotion.
                demoted_traces += 1;
                None
            } else {
                Some(typical_survivals.ilog2())
            };
            if let Some(c) = class {
                if !classes.contains(&c) {
                    classes.push(c);
                }
            }
            lifetimes.push((trace, path, histogram, typical_survivals, objects, class));
        }
        classes.sort_unstable();

        // Map lifetime classes to generations 2, 3, ... (generation 1 is the
        // collectors' age-out old generation; pretenured cohorts get their
        // own spaces above it, like NG2C's dynamic generations).
        let gen_of_class: HashMap<u32, GenId> = classes
            .iter()
            .enumerate()
            .map(|(i, &c)| (c, GenId::new(2 + i as u32)))
            .collect();

        let lifetimes: Vec<TraceLifetime> = lifetimes
            .into_iter()
            .map(
                |(trace, path, histogram, typical_survivals, objects, class)| TraceLifetime {
                    trace,
                    path,
                    histogram,
                    typical_survivals,
                    objects,
                    gen: class.map(|c| gen_of_class[&c]).unwrap_or(GenId::YOUNG),
                },
            )
            .collect();

        // Step 3: STTree.
        let mut tree = SttTree::new();
        for t in &lifetimes {
            tree.insert_path(&t.path, t.gen);
        }
        let conflicts = tree.detect_conflicts();
        let resolutions = tree.solve_conflicts(&conflicts);
        let conflicted: std::collections::HashSet<CodeLoc> =
            conflicts.iter().map(|c| c.loc.clone()).collect();

        // Step 4: profile assembly.
        let mut profile = AllocationProfile::new();
        for leaf in tree.leaves() {
            if leaf.gen.is_young() {
                continue;
            }
            if conflicted.contains(&leaf.loc) {
                // Conflicted site: @Gen annotation; generation arrives via
                // the resolutions' call-site wrappers.
                profile.add_site(PretenuredSite {
                    loc: leaf.loc.clone(),
                    gen: leaf.gen,
                    local: false,
                });
            } else {
                let (at, is_local) = tree.hoist_point(leaf.idx, &conflicted);
                profile.add_site(PretenuredSite {
                    loc: leaf.loc.clone(),
                    gen: leaf.gen,
                    local: is_local,
                });
                if !is_local {
                    profile.add_gen_call(GenCall { at, gen: leaf.gen });
                }
            }
        }
        for r in &resolutions {
            if !r.gen.is_young() {
                profile.add_gen_call(GenCall {
                    at: r.at.clone(),
                    gen: r.gen,
                });
            }
        }

        AnalysisOutcome {
            profile,
            lifetimes: SiteLifetimes { traces: lifetimes },
            conflicts,
            resolutions,
            demoted_traces,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polm2_heap::{Heap, HeapConfig, ObjectId};
    use polm2_metrics::{SimDuration, SimTime};
    use polm2_runtime::{ClassDef, Instr, Loader, MethodDef, Program, SizeSpec, TraceFrame};
    use polm2_snapshot::Snapshot;

    /// Builds a loaded program with two callers reaching one allocation
    /// site, as in the paper's Listing 1.
    fn loaded() -> (Heap, LoadedProgram) {
        let mut p = Program::new();
        p.add_class(
            ClassDef::new("C")
                .with_method(MethodDef::new("longCaller").push(Instr::call("C", "make", 10)))
                .with_method(MethodDef::new("shortCaller").push(Instr::call("C", "make", 20)))
                .with_method(MethodDef::new("make").push(Instr::alloc(
                    "Buf",
                    SizeSpec::Fixed(64),
                    5,
                ))),
        );
        let mut heap = Heap::new(HeapConfig::small());
        let loaded = Loader::load(p, &mut [], &mut heap).unwrap();
        (heap, loaded)
    }

    fn hash(i: u64) -> IdentityHash {
        IdentityHash::of(ObjectId::new(i))
    }

    fn snapshot(seq: u32, hashes: &[IdentityHash]) -> Snapshot {
        Snapshot::new(
            seq,
            SimTime::from_secs(seq as u64),
            hashes.iter().copied().collect(),
            4096,
            SimDuration::from_millis(1),
        )
    }

    /// Trace through longCaller (frames: longCaller@10 -> make@5).
    fn long_trace() -> Vec<TraceFrame> {
        vec![
            TraceFrame {
                class_idx: 0,
                method_idx: 0,
                line: 10,
            },
            TraceFrame {
                class_idx: 0,
                method_idx: 2,
                line: 5,
            },
        ]
    }

    fn short_trace() -> Vec<TraceFrame> {
        vec![
            TraceFrame {
                class_idx: 0,
                method_idx: 1,
                line: 20,
            },
            TraceFrame {
                class_idx: 0,
                method_idx: 2,
                line: 5,
            },
        ]
    }

    #[test]
    fn long_lived_sites_get_pretenured() {
        let (_, program) = loaded();
        let mut records = AllocationRecords::default();
        // 8 objects through the long path, all surviving 4 snapshots.
        let long_hashes: Vec<_> = (0..8).map(hash).collect();
        for &h in &long_hashes {
            records.record(long_trace(), h);
        }
        let series: SnapshotSeries = (0..4).map(|s| snapshot(s, &long_hashes)).collect();
        let outcome = Analyzer::default().analyze(&records, &series, &program);
        assert!(outcome.conflicts.is_empty());
        assert_eq!(outcome.profile.sites().len(), 1);
        let site = &outcome.profile.sites()[0];
        assert_eq!(site.loc, CodeLoc::new("C", "make", 5));
        assert!(!site.gen.is_young());
        // Single-gen subtree hoists to the caller's call site.
        assert_eq!(outcome.profile.gen_calls().len(), 1);
        assert_eq!(
            outcome.profile.gen_calls()[0].at,
            CodeLoc::new("C", "longCaller", 10)
        );
    }

    #[test]
    fn short_lived_sites_stay_young() {
        let (_, program) = loaded();
        let mut records = AllocationRecords::default();
        for i in 0..8 {
            records.record(short_trace(), hash(i));
        }
        // Objects never appear in any snapshot: they die before the first.
        let series: SnapshotSeries = (0..4).map(|s| snapshot(s, &[])).collect();
        let outcome = Analyzer::default().analyze(&records, &series, &program);
        assert!(
            outcome.profile.is_empty(),
            "short-lived sites must not be instrumented"
        );
        assert_eq!(outcome.lifetimes.traces()[0].gen, GenId::YOUNG);
        assert_eq!(outcome.lifetimes.traces()[0].typical_survivals, 0);
    }

    #[test]
    fn conflicting_paths_are_detected_and_resolved() {
        let (_, program) = loaded();
        let mut records = AllocationRecords::default();
        let long_hashes: Vec<_> = (0..8).map(hash).collect();
        let short_hashes: Vec<_> = (100..108).map(hash).collect();
        for &h in &long_hashes {
            records.record(long_trace(), h);
        }
        for &h in &short_hashes {
            records.record(short_trace(), h);
        }
        let series: SnapshotSeries = (0..4).map(|s| snapshot(s, &long_hashes)).collect();
        let outcome = Analyzer::default().analyze(&records, &series, &program);
        assert_eq!(outcome.conflicts.len(), 1, "same site, different lifetimes");
        // The long path's generation is set at its distinguishing caller.
        let call = outcome
            .profile
            .gen_calls()
            .iter()
            .find(|c| c.at == CodeLoc::new("C", "longCaller", 10))
            .expect("resolution wraps the long caller");
        assert!(!call.gen.is_young());
        // No wrapper for the short path (young is the default).
        assert!(outcome
            .profile
            .gen_calls()
            .iter()
            .all(|c| c.at != CodeLoc::new("C", "shortCaller", 20)));
        // The site is annotated but not local.
        let site = outcome
            .profile
            .site_at(&CodeLoc::new("C", "make", 5))
            .unwrap();
        assert!(!site.local);
    }

    #[test]
    fn lifetime_classes_map_to_distinct_generations() {
        let (_, program) = loaded();
        let mut records = AllocationRecords::default();
        // Long path survives 16 snapshots, short path 2 — different log2
        // classes, hence different generations.
        let a: Vec<_> = (0..8).map(hash).collect();
        let b: Vec<_> = (100..108).map(hash).collect();
        for &h in &a {
            records.record(long_trace(), h);
        }
        for &h in &b {
            records.record(short_trace(), h);
        }
        let mut series = SnapshotSeries::new();
        for s in 0..16 {
            let mut live: Vec<_> = a.clone();
            if s < 2 {
                live.extend(&b);
            }
            series.push(snapshot(s, &live));
        }
        let outcome = Analyzer::default().analyze(&records, &series, &program);
        let gens = outcome.profile.generations_used();
        assert_eq!(
            gens.len(),
            2,
            "two lifetime classes, two generations: {gens:?}"
        );
    }

    #[test]
    fn sparse_traces_are_left_alone() {
        let (_, program) = loaded();
        let mut records = AllocationRecords::default();
        // Only two objects — below min_objects.
        for i in 0..2 {
            records.record(long_trace(), hash(i));
        }
        let series: SnapshotSeries = (0..8).map(|s| snapshot(s, &[hash(0), hash(1)])).collect();
        let outcome = Analyzer::default().analyze(&records, &series, &program);
        assert!(outcome.profile.is_empty());
    }

    #[test]
    fn under_observed_runs_demote_to_young_and_count_it() {
        let (_, program) = loaded();
        let mut records = AllocationRecords::default();
        let hashes: Vec<_> = (0..8).map(hash).collect();
        for &h in &hashes {
            records.record(long_trace(), h);
        }
        // One snapshot only (the rest were lost): the same evidence that
        // pretenures in `long_lived_sites_get_pretenured` must now demote.
        let series: SnapshotSeries = std::iter::once(snapshot(0, &hashes)).collect();
        let config = AnalyzerConfig {
            min_survivals: 1,
            ..AnalyzerConfig::default()
        };
        let outcome = Analyzer::new(config).analyze(&records, &series, &program);
        assert!(outcome.profile.is_empty(), "one snapshot is not evidence");
        assert_eq!(outcome.demoted_traces, 1);
        assert_eq!(outcome.lifetimes.traces()[0].gen, GenId::YOUNG);

        // With the guard relaxed the same inputs pretenure — proving the
        // guard (not the evidence) made the difference.
        let relaxed = AnalyzerConfig {
            min_survivals: 1,
            min_snapshots: 1,
            ..config
        };
        let outcome = Analyzer::new(relaxed).analyze(&records, &series, &program);
        assert!(!outcome.profile.is_empty());
        assert_eq!(outcome.demoted_traces, 0);
    }

    #[test]
    fn site_lifetimes_expose_histograms() {
        let (_, program) = loaded();
        let mut records = AllocationRecords::default();
        for i in 0..8 {
            records.record(long_trace(), hash(i));
        }
        let series: SnapshotSeries = (0..3)
            .map(|s| snapshot(s, &(0..8).map(hash).collect::<Vec<_>>()))
            .collect();
        let outcome = Analyzer::default().analyze(&records, &series, &program);
        let site = CodeLoc::new("C", "make", 5);
        let stats: Vec<_> = outcome.lifetimes.at_site(&site).collect();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].objects, 8);
        assert_eq!(stats[0].typical_survivals, 3);
        assert_eq!(stats[0].histogram[&3], 8);
    }
}
