//! The Analyzer: from allocation records + snapshots to an allocation
//! profile (paper §3.3).
//!
//! Two independent performance knobs, both defaulting to the fast path and
//! both guaranteed to produce output identical to the original sequential
//! hash-probe implementation:
//!
//! * [`ReplayStrategy`] — how per-object survival counts are computed.
//!   [`ReplayStrategy::SortedMerge`] folds the columnar
//!   [`SnapshotIndex`](polm2_snapshot::SnapshotIndex) the series maintains at
//!   capture time into one sorted survival table (a weighted merge over the
//!   delta-encoded columns), replacing millions of hash-map probes with
//!   linear merges and directory-indexed lookups.
//!   [`ReplayStrategy::HashProbe`] keeps the original probe loop as the
//!   baseline.
//! * [`AnalyzerConfig::parallelism`] — the per-trace lifetime stage and the
//!   STTree conflict-resolution stage shard across scoped worker threads.
//!   Shards are contiguous trace-id (resp. conflict) ranges and results are
//!   merged in shard order, so any parallelism level produces bit-identical
//!   output; `1` runs the sequential path inline on the calling thread.

use std::collections::{BTreeMap, HashMap};

use polm2_heap::{GenId, IdHashMap, IdHashSet, IdentityHash};
use polm2_runtime::{CodeLoc, LoadedProgram};
use polm2_snapshot::{SnapshotSeries, SurvivalCounts};

use crate::recorder::{AllocationRecords, TraceId};
use crate::sttree::{Conflict, Resolution, SttTree};
use crate::{AllocationProfile, GenCall, PretenuredSite};

/// How the Analyzer computes per-object survival counts (step 1 of §3.3).
///
/// Both strategies produce identical counts; they differ only in cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplayStrategy {
    /// The original implementation: one hash-map entry probe per (object,
    /// snapshot) membership. Kept as the perf-gate baseline and as a
    /// differential-testing oracle.
    HashProbe,
    /// Columnar replay: sorted per-snapshot hash columns (delta-encoded
    /// against the previous snapshot where smaller) are merge-accumulated
    /// into one sorted `(hash, count)` table; lookups are binary searches.
    #[default]
    SortedMerge,
}

/// Analyzer tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalyzerConfig {
    /// A trace whose objects typically survive fewer snapshots than this
    /// stays in the young generation (its objects die young enough for the
    /// normal young collection to handle them).
    pub min_survivals: u32,
    /// Traces with fewer recorded objects than this are left young — too
    /// little evidence to pretenure (misplacing rare allocations costs more
    /// than it saves).
    pub min_objects: u64,
    /// With fewer snapshots than this in the whole series, no trace is
    /// pretenured at all: lifetime estimates from one (or zero) snapshots
    /// are guesses, and the safe degradation is the young-generation
    /// default. Traces demoted by this guard are counted in
    /// [`AnalysisOutcome::demoted_traces`].
    pub min_snapshots: u32,
    /// How survival counts are computed; see [`ReplayStrategy`].
    pub replay: ReplayStrategy,
    /// Worker threads for the per-trace lifetime stage and conflict
    /// resolution. `0` and `1` both mean sequential (run inline on the
    /// calling thread); any value produces bit-identical output.
    pub parallelism: usize,
    /// Below this many recorded allocations the analyzer ignores
    /// [`parallelism`](AnalyzerConfig::parallelism) and runs sequentially:
    /// on small inputs thread spawn/join costs more than the sharded work
    /// saves (the perf gate measured ~0.9× on a 10k-record workload).
    /// Output is identical either way — this knob only picks the cheaper
    /// execution mode.
    pub min_parallel_records: u64,
}

impl Default for AnalyzerConfig {
    fn default() -> Self {
        AnalyzerConfig {
            min_survivals: 2,
            min_objects: 4,
            min_snapshots: 2,
            replay: ReplayStrategy::SortedMerge,
            parallelism: 1,
            min_parallel_records: 16_384,
        }
    }
}

impl AnalyzerConfig {
    /// The worker count [`Analyzer::analyze`] will actually use for
    /// `record_count` recorded allocations: `parallelism`, unless the input
    /// is below [`min_parallel_records`](AnalyzerConfig::min_parallel_records)
    /// — then `1` (sequential). Exposed so harnesses can report the chosen
    /// mode alongside their measurements.
    pub fn effective_workers(&self, record_count: u64) -> usize {
        if record_count < self.min_parallel_records {
            1
        } else {
            self.parallelism.max(1)
        }
    }
}

/// Lifetime statistics for one allocation path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceLifetime {
    /// The trace.
    pub trace: TraceId,
    /// The allocation path (outermost frame first).
    pub path: Vec<CodeLoc>,
    /// survivals → object count: the paper's buckets (§3.3) — bucket *k*
    /// holds objects that appeared in *k* snapshots.
    pub histogram: BTreeMap<u32, u64>,
    /// The typical survival count: the weighted median of the buckets.
    ///
    /// The paper takes the bucket "most objects" fall into (the mode); for
    /// cohort lifetimes (a memtable's cells die together at flush,
    /// regardless of birth time) the survival distribution is nearly
    /// uniform, making the mode a coin-flip between adjacent buckets. The
    /// median estimates the same "typical lifetime" robustly.
    pub typical_survivals: u32,
    /// Objects recorded through this path.
    pub objects: u64,
    /// The generation the analyzer assigned.
    pub gen: GenId,
}

/// Per-site lifetime distributions (the "application allocation profile"
/// §3.3 derives generations from).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SiteLifetimes {
    traces: Vec<TraceLifetime>,
}

impl SiteLifetimes {
    /// All per-path lifetime records.
    pub fn traces(&self) -> &[TraceLifetime] {
        &self.traces
    }

    /// Lifetime records whose allocation site is `loc`.
    pub fn at_site<'a>(&'a self, loc: &'a CodeLoc) -> impl Iterator<Item = &'a TraceLifetime> {
        self.traces
            .iter()
            .filter(move |t| t.path.last() == Some(loc))
    }
}

/// Everything the analysis produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisOutcome {
    /// The profile to feed the Instrumenter.
    pub profile: AllocationProfile,
    /// Per-path lifetime distributions.
    pub lifetimes: SiteLifetimes,
    /// Conflicts detected (paper Table 1's "# Conflicts Encountered").
    pub conflicts: Vec<Conflict>,
    /// How each conflict path was resolved.
    pub resolutions: Vec<Resolution>,
    /// Traces that had enough evidence to pretenure but were demoted to the
    /// young generation because the run was under-observed (fewer than
    /// [`AnalyzerConfig::min_snapshots`] snapshots).
    pub demoted_traces: u64,
}

/// Survival counts behind either replay strategy, with one lookup API.
enum Survivals<'a> {
    Probe(IdHashMap<IdentityHash, u32>),
    Merged(SurvivalCounts),
    /// The fused single-pass path for small profiles: lookups binary-search
    /// the index's running accumulator in place. No table clone, no 64 Ki
    /// directory build — the whole replay is one pass over the record
    /// streams, which a sub-16k-record session cannot amortize the directory
    /// for. Counts agree with [`Survivals::Merged`] on every input (both
    /// read the same packed accumulator).
    Fused(&'a polm2_snapshot::SnapshotIndex),
}

impl<'a> Survivals<'a> {
    fn build(snapshots: &'a SnapshotSeries, strategy: ReplayStrategy, fused: bool) -> Self {
        match strategy {
            ReplayStrategy::HashProbe => {
                let mut survivals: IdHashMap<IdentityHash, u32> = IdHashMap::default();
                for snapshot in snapshots.snapshots() {
                    for &hash in snapshot.hashes() {
                        *survivals.entry(hash).or_insert(0) += 1;
                    }
                }
                Survivals::Probe(survivals)
            }
            ReplayStrategy::SortedMerge if fused => Survivals::Fused(snapshots.index()),
            ReplayStrategy::SortedMerge => {
                // The series maintains its columnar index at capture time;
                // the replay only pays for the weighted-event fold.
                Survivals::Merged(snapshots.index().survival_counts())
            }
        }
    }

    fn get(&self, hash: IdentityHash) -> u32 {
        match self {
            Survivals::Probe(map) => map.get(&hash).copied().unwrap_or(0),
            Survivals::Merged(counts) => counts.get(u64::from(hash.raw())),
            Survivals::Fused(index) => index.survivals_of(u64::from(hash.raw())),
        }
    }
}

/// One trace's stats before generation assignment: (trace, path, histogram,
/// typical survivals, objects, lifetime class, demoted-by-guard flag).
type RawTrace = (
    TraceId,
    Vec<CodeLoc>,
    BTreeMap<u32, u64>,
    u32,
    u64,
    Option<u32>,
    bool,
);

/// Computes per-trace lifetime stats for one contiguous shard of trace ids.
///
/// Pure function of its inputs and processes ids in order, so concatenating
/// shard outputs in shard order reproduces the sequential pass exactly.
fn shard_lifetimes(
    ids: &[TraceId],
    records: &AllocationRecords,
    survivals: &Survivals<'_>,
    locs: &[CodeLoc],
    config: &AnalyzerConfig,
    under_observed: bool,
    snapshot_count: usize,
) -> Vec<RawTrace> {
    // Survival counts are bounded by the snapshot count, so a flat bucket
    // array (reused across traces) replaces per-record BTreeMap inserts.
    let mut buckets = vec![0u64; snapshot_count + 1];
    let mut out = Vec::with_capacity(ids.len());
    for &trace in ids {
        let stream = records.stream(trace);
        for &hash in stream {
            buckets[survivals.get(hash) as usize] += 1;
        }
        let objects = stream.len() as u64;
        let typical_survivals = {
            let mut remaining = objects.div_ceil(2);
            let mut median = 0;
            for (s, &count) in buckets.iter().enumerate() {
                if count == 0 {
                    continue;
                }
                if count >= remaining {
                    median = s as u32;
                    break;
                }
                remaining -= count;
            }
            median
        };
        let histogram: BTreeMap<u32, u64> = buckets
            .iter()
            .enumerate()
            .filter(|&(_, &count)| count > 0)
            .map(|(s, &count)| (s as u32, count))
            .collect();
        buckets.iter_mut().for_each(|c| *c = 0);
        let path: Vec<CodeLoc> = records
            .trace_symbols(trace)
            .iter()
            .map(|&s| locs[s.index()].clone())
            .collect();
        let (class, demoted) =
            if objects < config.min_objects || typical_survivals < config.min_survivals {
                (None, false)
            } else if under_observed {
                // Enough evidence to pretenure in a healthy run, but too few
                // snapshots actually arrived (lost captures): fall back to
                // the young default and count the demotion.
                (None, true)
            } else {
                (Some(typical_survivals.ilog2()), false)
            };
        out.push((
            trace,
            path,
            histogram,
            typical_survivals,
            objects,
            class,
            demoted,
        ));
    }
    out
}

/// The offline analyzer.
#[derive(Debug, Clone, Default)]
pub struct Analyzer {
    config: AnalyzerConfig,
}

impl Analyzer {
    /// Creates an analyzer with the given tuning.
    pub fn new(config: AnalyzerConfig) -> Self {
        Analyzer { config }
    }

    /// Runs the full §3.3 pipeline:
    ///
    /// 1. count, per recorded object, the number of snapshots it appears in
    ///    (the bucket walk) — via hash probes or the columnar merge,
    ///    per [`AnalyzerConfig::replay`];
    /// 2. per allocation path, find the survivor-mass median and map it to a
    ///    target generation (log₂ quantization: lifetimes within 2× share a
    ///    generation) — sharded across [`AnalyzerConfig::parallelism`]
    ///    workers;
    /// 3. build the STTree, detect conflicts, resolve them (Algorithm 1) —
    ///    resolution sharded per conflict;
    /// 4. assemble the profile with the §4.4 subtree-hoisting optimization.
    ///
    /// Output is a pure function of the inputs and `min_*` thresholds:
    /// `replay` and `parallelism` never change the result, only the cost.
    pub fn analyze(
        &self,
        records: &AllocationRecords,
        snapshots: &SnapshotSeries,
        program: &LoadedProgram,
    ) -> AnalysisOutcome {
        // Step 1: survivals per object hash. Small profiles (the common
        // per-tenant case in fleet merges) take the fused single-pass path:
        // below the same threshold that disables sharding, lookups go
        // straight to the index's accumulator and the directory build is
        // skipped entirely. Identical counts either way.
        let fused = records.total_records() < self.config.min_parallel_records;
        let survivals = Survivals::build(snapshots, self.config.replay, fused);

        // Step 2: per-trace histograms, medians, and generation classes.
        // Location strings are resolved once per interned frame symbol;
        // the per-trace loop only clones from this table.
        let locs: Vec<CodeLoc> = records.symbols().loc_table(program);
        let under_observed = (snapshots.len() as u32) < self.config.min_snapshots;
        let ids: Vec<TraceId> = records.trace_ids().collect();
        let workers = self.config.effective_workers(records.total_records());
        let raw: Vec<RawTrace> = if workers == 1 || ids.len() < 2 {
            shard_lifetimes(
                &ids,
                records,
                &survivals,
                &locs,
                &self.config,
                under_observed,
                snapshots.len(),
            )
        } else {
            let chunk = ids.len().div_ceil(workers);
            std::thread::scope(|s| {
                let handles: Vec<_> = ids
                    .chunks(chunk)
                    .map(|shard| {
                        let survivals = &survivals;
                        let locs = &locs;
                        let config = &self.config;
                        s.spawn(move || {
                            shard_lifetimes(
                                shard,
                                records,
                                survivals,
                                locs,
                                config,
                                under_observed,
                                snapshots.len(),
                            )
                        })
                    })
                    .collect();
                // Joining in spawn order concatenates shards in trace-id
                // order: identical to the sequential pass.
                handles
                    .into_iter()
                    .flat_map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
                    .collect()
            })
        };

        let mut demoted_traces = 0u64;
        let mut classes: Vec<u32> = Vec::new(); // distinct log2 lifetime classes
        for (_, _, _, _, _, class, demoted) in &raw {
            if *demoted {
                demoted_traces += 1;
            }
            if let Some(c) = class {
                if !classes.contains(c) {
                    classes.push(*c);
                }
            }
        }
        classes.sort_unstable();

        // Map lifetime classes to generations 2, 3, ... (generation 1 is the
        // collectors' age-out old generation; pretenured cohorts get their
        // own spaces above it, like NG2C's dynamic generations).
        let gen_of_class: HashMap<u32, GenId> = classes
            .iter()
            .enumerate()
            .map(|(i, &c)| (c, GenId::new(2 + i as u32)))
            .collect();

        let lifetimes: Vec<TraceLifetime> = raw
            .into_iter()
            .map(
                |(trace, path, histogram, typical_survivals, objects, class, _)| TraceLifetime {
                    trace,
                    path,
                    histogram,
                    typical_survivals,
                    objects,
                    gen: class.map(|c| gen_of_class[&c]).unwrap_or(GenId::YOUNG),
                },
            )
            .collect();

        // Step 3: STTree. A trace with no resolvable frames (possible only
        // for records of untrusted provenance, e.g. a replayed journal) has
        // no place in the tree; skipping it beats tripping `insert_path`'s
        // non-empty assertion.
        let mut tree = SttTree::new();
        for t in &lifetimes {
            if !t.path.is_empty() {
                tree.insert_path(&t.path, t.gen);
            }
        }
        let conflicts = tree.detect_conflicts();
        let resolutions: Vec<Resolution> = if workers == 1 || conflicts.len() < 2 {
            tree.solve_conflicts(&conflicts)
        } else {
            // Conflicts are independent; shard them and concatenate in
            // shard order (see `SttTree::solve_conflicts`).
            let chunk = conflicts.len().div_ceil(workers);
            std::thread::scope(|s| {
                let handles: Vec<_> = conflicts
                    .chunks(chunk)
                    .map(|shard| {
                        let tree = &tree;
                        s.spawn(move || tree.solve_conflicts(shard))
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
                    .collect()
            })
        };
        // Conflicted locations as interned tree ids: membership tests in the
        // profile-assembly loop are integer set probes, no CodeLoc clones.
        // Conflicts come from the tree, so every location interns; the
        // filter keeps this typed rather than asserting it.
        let conflicted: IdHashSet<u32> = conflicts
            .iter()
            .filter_map(|c| tree.loc_id(&c.loc))
            .collect();

        // Step 4: profile assembly.
        let mut profile = AllocationProfile::new();
        for leaf in tree.leaves() {
            if leaf.gen.is_young() {
                continue;
            }
            if conflicted.contains(&leaf.sym) {
                // Conflicted site: @Gen annotation; generation arrives via
                // the resolutions' call-site wrappers.
                profile.add_site(PretenuredSite {
                    loc: leaf.loc,
                    gen: leaf.gen,
                    local: false,
                });
            } else {
                let (at, is_local) = tree.hoist_point_sym(leaf.idx, &conflicted);
                profile.add_site(PretenuredSite {
                    loc: leaf.loc,
                    gen: leaf.gen,
                    local: is_local,
                });
                if !is_local {
                    profile.add_gen_call(GenCall {
                        at: tree.loc_at(at).clone(),
                        gen: leaf.gen,
                    });
                }
            }
        }
        for r in &resolutions {
            if !r.gen.is_young() {
                profile.add_gen_call(GenCall {
                    at: r.at.clone(),
                    gen: r.gen,
                });
            }
        }

        AnalysisOutcome {
            profile,
            lifetimes: SiteLifetimes { traces: lifetimes },
            conflicts,
            resolutions,
            demoted_traces,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polm2_heap::{Heap, HeapConfig, ObjectId};
    use polm2_metrics::{SimDuration, SimTime};
    use polm2_runtime::{ClassDef, Instr, Loader, MethodDef, Program, SizeSpec, TraceFrame};
    use polm2_snapshot::Snapshot;

    /// Builds a loaded program with two callers reaching one allocation
    /// site, as in the paper's Listing 1.
    fn loaded() -> (Heap, LoadedProgram) {
        let mut p = Program::new();
        p.add_class(
            ClassDef::new("C")
                .with_method(MethodDef::new("longCaller").push(Instr::call("C", "make", 10)))
                .with_method(MethodDef::new("shortCaller").push(Instr::call("C", "make", 20)))
                .with_method(MethodDef::new("make").push(Instr::alloc(
                    "Buf",
                    SizeSpec::Fixed(64),
                    5,
                ))),
        );
        let mut heap = Heap::new(HeapConfig::small());
        let loaded = Loader::load(p, &mut [], &mut heap).unwrap();
        (heap, loaded)
    }

    fn hash(i: u64) -> IdentityHash {
        IdentityHash::of(ObjectId::new(i))
    }

    fn snapshot(seq: u32, hashes: &[IdentityHash]) -> Snapshot {
        Snapshot::new(
            seq,
            SimTime::from_secs(seq as u64),
            hashes.iter().copied().collect(),
            4096,
            SimDuration::from_millis(1),
        )
    }

    /// Trace through longCaller (frames: longCaller@10 -> make@5).
    fn long_trace() -> Vec<TraceFrame> {
        vec![
            TraceFrame {
                class_idx: 0,
                method_idx: 0,
                line: 10,
            },
            TraceFrame {
                class_idx: 0,
                method_idx: 2,
                line: 5,
            },
        ]
    }

    fn short_trace() -> Vec<TraceFrame> {
        vec![
            TraceFrame {
                class_idx: 0,
                method_idx: 1,
                line: 20,
            },
            TraceFrame {
                class_idx: 0,
                method_idx: 2,
                line: 5,
            },
        ]
    }

    #[test]
    fn long_lived_sites_get_pretenured() {
        let (_, program) = loaded();
        let mut records = AllocationRecords::default();
        // 8 objects through the long path, all surviving 4 snapshots.
        let long_hashes: Vec<_> = (0..8).map(hash).collect();
        for &h in &long_hashes {
            records.record(&long_trace(), h);
        }
        let series: SnapshotSeries = (0..4).map(|s| snapshot(s, &long_hashes)).collect();
        let outcome = Analyzer::default().analyze(&records, &series, &program);
        assert!(outcome.conflicts.is_empty());
        assert_eq!(outcome.profile.sites().len(), 1);
        let site = &outcome.profile.sites()[0];
        assert_eq!(site.loc, CodeLoc::new("C", "make", 5));
        assert!(!site.gen.is_young());
        // Single-gen subtree hoists to the caller's call site.
        assert_eq!(outcome.profile.gen_calls().len(), 1);
        assert_eq!(
            outcome.profile.gen_calls()[0].at,
            CodeLoc::new("C", "longCaller", 10)
        );
    }

    #[test]
    fn short_lived_sites_stay_young() {
        let (_, program) = loaded();
        let mut records = AllocationRecords::default();
        for i in 0..8 {
            records.record(&short_trace(), hash(i));
        }
        // Objects never appear in any snapshot: they die before the first.
        let series: SnapshotSeries = (0..4).map(|s| snapshot(s, &[])).collect();
        let outcome = Analyzer::default().analyze(&records, &series, &program);
        assert!(
            outcome.profile.is_empty(),
            "short-lived sites must not be instrumented"
        );
        assert_eq!(outcome.lifetimes.traces()[0].gen, GenId::YOUNG);
        assert_eq!(outcome.lifetimes.traces()[0].typical_survivals, 0);
    }

    #[test]
    fn conflicting_paths_are_detected_and_resolved() {
        let (_, program) = loaded();
        let mut records = AllocationRecords::default();
        let long_hashes: Vec<_> = (0..8).map(hash).collect();
        let short_hashes: Vec<_> = (100..108).map(hash).collect();
        for &h in &long_hashes {
            records.record(&long_trace(), h);
        }
        for &h in &short_hashes {
            records.record(&short_trace(), h);
        }
        let series: SnapshotSeries = (0..4).map(|s| snapshot(s, &long_hashes)).collect();
        let outcome = Analyzer::default().analyze(&records, &series, &program);
        assert_eq!(outcome.conflicts.len(), 1, "same site, different lifetimes");
        // The long path's generation is set at its distinguishing caller.
        let call = outcome
            .profile
            .gen_calls()
            .iter()
            .find(|c| c.at == CodeLoc::new("C", "longCaller", 10))
            .expect("resolution wraps the long caller");
        assert!(!call.gen.is_young());
        // No wrapper for the short path (young is the default).
        assert!(outcome
            .profile
            .gen_calls()
            .iter()
            .all(|c| c.at != CodeLoc::new("C", "shortCaller", 20)));
        // The site is annotated but not local.
        let site = outcome
            .profile
            .site_at(&CodeLoc::new("C", "make", 5))
            .unwrap();
        assert!(!site.local);
    }

    #[test]
    fn lifetime_classes_map_to_distinct_generations() {
        let (_, program) = loaded();
        let mut records = AllocationRecords::default();
        // Long path survives 16 snapshots, short path 2 — different log2
        // classes, hence different generations.
        let a: Vec<_> = (0..8).map(hash).collect();
        let b: Vec<_> = (100..108).map(hash).collect();
        for &h in &a {
            records.record(&long_trace(), h);
        }
        for &h in &b {
            records.record(&short_trace(), h);
        }
        let mut series = SnapshotSeries::new();
        for s in 0..16 {
            let mut live: Vec<_> = a.clone();
            if s < 2 {
                live.extend(&b);
            }
            series.push(snapshot(s, &live));
        }
        let outcome = Analyzer::default().analyze(&records, &series, &program);
        let gens = outcome.profile.generations_used();
        assert_eq!(
            gens.len(),
            2,
            "two lifetime classes, two generations: {gens:?}"
        );
    }

    #[test]
    fn sparse_traces_are_left_alone() {
        let (_, program) = loaded();
        let mut records = AllocationRecords::default();
        // Only two objects — below min_objects.
        for i in 0..2 {
            records.record(&long_trace(), hash(i));
        }
        let series: SnapshotSeries = (0..8).map(|s| snapshot(s, &[hash(0), hash(1)])).collect();
        let outcome = Analyzer::default().analyze(&records, &series, &program);
        assert!(outcome.profile.is_empty());
    }

    #[test]
    fn under_observed_runs_demote_to_young_and_count_it() {
        let (_, program) = loaded();
        let mut records = AllocationRecords::default();
        let hashes: Vec<_> = (0..8).map(hash).collect();
        for &h in &hashes {
            records.record(&long_trace(), h);
        }
        // One snapshot only (the rest were lost): the same evidence that
        // pretenures in `long_lived_sites_get_pretenured` must now demote.
        let series: SnapshotSeries = std::iter::once(snapshot(0, &hashes)).collect();
        let config = AnalyzerConfig {
            min_survivals: 1,
            ..AnalyzerConfig::default()
        };
        let outcome = Analyzer::new(config).analyze(&records, &series, &program);
        assert!(outcome.profile.is_empty(), "one snapshot is not evidence");
        assert_eq!(outcome.demoted_traces, 1);
        assert_eq!(outcome.lifetimes.traces()[0].gen, GenId::YOUNG);

        // With the guard relaxed the same inputs pretenure — proving the
        // guard (not the evidence) made the difference.
        let relaxed = AnalyzerConfig {
            min_survivals: 1,
            min_snapshots: 1,
            ..config
        };
        let outcome = Analyzer::new(relaxed).analyze(&records, &series, &program);
        assert!(!outcome.profile.is_empty());
        assert_eq!(outcome.demoted_traces, 0);
    }

    #[test]
    fn site_lifetimes_expose_histograms() {
        let (_, program) = loaded();
        let mut records = AllocationRecords::default();
        for i in 0..8 {
            records.record(&long_trace(), hash(i));
        }
        let series: SnapshotSeries = (0..3)
            .map(|s| snapshot(s, &(0..8).map(hash).collect::<Vec<_>>()))
            .collect();
        let outcome = Analyzer::default().analyze(&records, &series, &program);
        let site = CodeLoc::new("C", "make", 5);
        let stats: Vec<_> = outcome.lifetimes.at_site(&site).collect();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].objects, 8);
        assert_eq!(stats[0].typical_survivals, 3);
        assert_eq!(stats[0].histogram[&3], 8);
    }

    /// A mixed workload with conflicts, several lifetime classes, and traces
    /// below every threshold — the shape that exercises every branch of the
    /// determinism contract.
    fn mixed_inputs() -> (AllocationRecords, SnapshotSeries, LoadedProgram) {
        let (_, program) = loaded();
        let mut records = AllocationRecords::default();
        let long_hashes: Vec<_> = (0..64).map(hash).collect();
        let short_hashes: Vec<_> = (1000..1064).map(hash).collect();
        for &h in &long_hashes {
            records.record(&long_trace(), h);
        }
        for &h in &short_hashes {
            records.record(&short_trace(), h);
        }
        // A sparse trace below min_objects.
        records.record(
            &[TraceFrame {
                class_idx: 0,
                method_idx: 0,
                line: 10,
            }],
            hash(5000),
        );
        let mut series = SnapshotSeries::new();
        for s in 0..12 {
            let mut live = long_hashes.clone();
            if s < 2 {
                live.extend(&short_hashes);
            }
            series.push(snapshot(s, &live));
        }
        (records, series, program)
    }

    #[test]
    fn replay_strategies_agree() {
        let (records, series, program) = mixed_inputs();
        let probe = Analyzer::new(AnalyzerConfig {
            replay: ReplayStrategy::HashProbe,
            ..AnalyzerConfig::default()
        })
        .analyze(&records, &series, &program);
        let merged = Analyzer::new(AnalyzerConfig {
            replay: ReplayStrategy::SortedMerge,
            ..AnalyzerConfig::default()
        })
        .analyze(&records, &series, &program);
        assert_eq!(probe, merged);
    }

    #[test]
    fn parallelism_is_invisible_in_the_output() {
        let (records, series, program) = mixed_inputs();
        let sequential = Analyzer::default().analyze(&records, &series, &program);
        for parallelism in [2, 3, 8] {
            let parallel = Analyzer::new(AnalyzerConfig {
                parallelism,
                // Force the parallel path even on this small input.
                min_parallel_records: 0,
                ..AnalyzerConfig::default()
            })
            .analyze(&records, &series, &program);
            assert_eq!(sequential, parallel, "parallelism={parallelism}");
        }
    }

    #[test]
    fn fused_replay_matches_the_directory_table() {
        let (records, series, program) = mixed_inputs();
        // Below the threshold the sorted-merge strategy reads survivals
        // straight out of the snapshot index (no directory table is built).
        let fused = Analyzer::new(AnalyzerConfig {
            replay: ReplayStrategy::SortedMerge,
            ..AnalyzerConfig::default()
        })
        .analyze(&records, &series, &program);
        // Forcing the threshold to zero materialises the directory table.
        let tabled = Analyzer::new(AnalyzerConfig {
            replay: ReplayStrategy::SortedMerge,
            min_parallel_records: 0,
            ..AnalyzerConfig::default()
        })
        .analyze(&records, &series, &program);
        assert_eq!(fused, tabled);
    }

    #[test]
    fn small_inputs_fall_back_to_sequential() {
        let config = AnalyzerConfig {
            parallelism: 8,
            ..AnalyzerConfig::default()
        };
        assert_eq!(config.effective_workers(0), 1);
        assert_eq!(config.effective_workers(config.min_parallel_records - 1), 1);
        assert_eq!(config.effective_workers(config.min_parallel_records), 8);
        // Disabling the threshold restores unconditional parallelism.
        let always = AnalyzerConfig {
            min_parallel_records: 0,
            ..config
        };
        assert_eq!(always.effective_workers(0), 8);
    }
}
