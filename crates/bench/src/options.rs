//! Command-line options shared by the figure binaries.

use polm2_metrics::SimDuration;
use polm2_workloads::{ProfilePhaseConfig, RunConfig};

/// Evaluation scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalOptions {
    /// The paper's setup: 30 simulated minutes per run, 5 ignored;
    /// 6 simulated minutes of profiling.
    Paper,
    /// A 15-simulated-minute pass: the scale used for the numbers recorded
    /// in EXPERIMENTS.md — long enough for stable tails at a fraction of the
    /// host cost.
    Standard,
    /// A quick pass (~6 simulated minutes per run) for smoke-testing the
    /// harness; shapes hold, tails are shorter.
    Quick,
}

impl EvalOptions {
    /// Parses process arguments: `--quick` selects the quick pass.
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--quick") {
            EvalOptions::Quick
        } else if std::env::args().any(|a| a == "--standard") {
            EvalOptions::Standard
        } else {
            EvalOptions::Paper
        }
    }

    /// The measured-run configuration at this scale.
    pub fn run_config(&self) -> RunConfig {
        match self {
            EvalOptions::Paper => RunConfig::paper(),
            EvalOptions::Standard => RunConfig {
                duration: SimDuration::from_secs(15 * 60),
                warmup: SimDuration::from_secs(3 * 60),
                ..RunConfig::paper()
            },
            EvalOptions::Quick => RunConfig {
                duration: SimDuration::from_secs(6 * 60),
                warmup: SimDuration::from_secs(60),
                ..RunConfig::paper()
            },
        }
    }

    /// The profiling-phase configuration at this scale.
    pub fn profile_config(&self) -> ProfilePhaseConfig {
        match self {
            EvalOptions::Paper => ProfilePhaseConfig::paper(),
            EvalOptions::Standard => ProfilePhaseConfig::paper(),
            EvalOptions::Quick => ProfilePhaseConfig {
                duration: SimDuration::from_secs(3 * 60),
                ..ProfilePhaseConfig::paper()
            },
        }
    }

    /// Label for output headers.
    pub fn label(&self) -> &'static str {
        match self {
            EvalOptions::Paper => "paper scale (30 sim-minutes/run)",
            EvalOptions::Standard => "standard scale (15 sim-minutes/run)",
            EvalOptions::Quick => "quick scale (6 sim-minutes/run)",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_differ() {
        let paper = EvalOptions::Paper.run_config();
        let quick = EvalOptions::Quick.run_config();
        assert!(quick.duration < paper.duration);
        assert!(quick.warmup < paper.warmup);
        assert!(
            EvalOptions::Quick.profile_config().duration < ProfilePhaseConfig::paper().duration
        );
        assert!(!EvalOptions::Paper.label().is_empty());
    }
}
