//! Experiment drivers for every table and figure.

use polm2_core::AllocationProfile;
use polm2_metrics::{SimDuration, SimTime};
use polm2_runtime::Jvm;
use polm2_snapshot::{CriuDumper, HeapDumper, JmapDumper, SnapshotSeries};
use polm2_workloads::{
    paper_workloads, profile_workload, run_workload, CollectorSetup, RunResult, Workload,
};

use crate::EvalOptions;

/// One row of Table 1, POLM2 vs. the manual NG2C annotations.
#[derive(Debug)]
pub struct Table1Row {
    /// Workload name.
    pub workload: &'static str,
    /// Allocation sites POLM2's profile `@Gen`-annotates.
    pub polm2_sites: usize,
    /// Allocation sites the manual annotations cover.
    pub manual_sites: usize,
    /// Candidate sites (the denominator).
    pub candidates: u32,
    /// Distinct generations POLM2 uses (young included).
    pub polm2_gens: usize,
    /// Distinct generations the manual annotations use (young included).
    pub manual_gens: usize,
    /// Conflicts POLM2 detected.
    pub polm2_conflicts: usize,
    /// Conflicts the manual annotations handle (path-aware wrappers).
    pub manual_conflicts: usize,
    /// Allocations recorded during profiling.
    pub recorded_allocs: u64,
    /// The generated profile (reused by the figure runs).
    pub profile: AllocationProfile,
}

/// Runs the profiling phase on every paper workload and assembles Table 1.
pub fn table1_profiling(opts: &EvalOptions) -> Vec<Table1Row> {
    let config = opts.profile_config();
    let mut rows = Vec::new();
    for workload in paper_workloads() {
        let result = profile_workload(workload.as_ref(), &config).expect("profiling run");
        let manual = workload.manual_profile();
        // Conflicts the manual annotations handle: shared sites annotated
        // non-locally, i.e. with path-aware call-site wrappers.
        let manual_conflicts = manual.sites().iter().filter(|s| !s.local).count();
        rows.push(Table1Row {
            workload: workload.name(),
            polm2_sites: result.outcome.profile.sites().len(),
            manual_sites: manual.sites().len(),
            candidates: workload.candidate_sites(),
            polm2_gens: result.outcome.profile.generations_used().len() + 1,
            manual_gens: manual.generations_used().len() + 1,
            polm2_conflicts: result.outcome.conflicts.len(),
            manual_conflicts,
            recorded_allocs: result.recorded_allocations,
            profile: result.outcome.profile,
        });
    }
    rows
}

/// The measured runs for one workload under each collector setup.
#[derive(Debug)]
pub struct CollectorRuns {
    /// Workload name.
    pub workload: &'static str,
    /// The G1 baseline run.
    pub g1: RunResult,
    /// The manually-annotated NG2C run.
    pub ng2c: RunResult,
    /// The POLM2 run (NG2C + generated profile).
    pub polm2: RunResult,
    /// The C4 run (throughput/memory figures only).
    pub c4: Option<RunResult>,
}

/// Profiles and runs every workload under G1 / NG2C / POLM2 (and C4 when
/// `with_c4`), the shared substrate of Figures 5–9.
pub fn collector_runs(opts: &EvalOptions, with_c4: bool) -> Vec<CollectorRuns> {
    let run_config = opts.run_config();
    let profile_config = opts.profile_config();
    let mut out = Vec::new();
    for workload in paper_workloads() {
        let w = workload.as_ref();
        eprintln!("[harness] profiling {}", w.name());
        let profile = profile_workload(w, &profile_config)
            .expect("profiling run")
            .outcome
            .profile;
        eprintln!("[harness] running {} under G1", w.name());
        let g1 = run_workload(w, &CollectorSetup::G1, &run_config).expect("G1 run");
        eprintln!("[harness] running {} under NG2C (manual)", w.name());
        let ng2c = run_workload(w, &CollectorSetup::Ng2cManual, &run_config).expect("NG2C run");
        eprintln!("[harness] running {} under POLM2", w.name());
        let polm2 =
            run_workload(w, &CollectorSetup::Polm2(profile), &run_config).expect("POLM2 run");
        let c4 = if with_c4 {
            eprintln!("[harness] running {} under C4", w.name());
            Some(run_workload(w, &CollectorSetup::C4, &run_config).expect("C4 run"))
        } else {
            None
        };
        out.push(CollectorRuns {
            workload: w.name(),
            g1,
            ng2c,
            polm2,
            c4,
        });
    }
    out
}

/// One Figure 5 panel: `(percentile, G1 ms, NG2C ms, POLM2 ms)` rows.
pub type PercentilePanel = (String, Vec<(f64, u64, u64, u64)>);

/// Figure 5: the pause-time percentile ladders.
pub fn fig5_percentiles(runs: &[CollectorRuns]) -> Vec<PercentilePanel> {
    runs.iter()
        .map(|r| {
            let mut g1 = r.g1.pause_histogram();
            let mut ng2c = r.ng2c.pause_histogram();
            let mut polm2 = r.polm2.pause_histogram();
            let ladder = polm2_metrics::STANDARD_PERCENTILES
                .iter()
                .map(|&p| {
                    (
                        p,
                        g1.percentile(p).unwrap_or_default().as_millis(),
                        ng2c.percentile(p).unwrap_or_default().as_millis(),
                        polm2.percentile(p).unwrap_or_default().as_millis(),
                    )
                })
                .collect();
            (r.workload.to_string(), ladder)
        })
        .collect()
}

/// One Figure 6 panel: `(interval label, G1, NG2C, POLM2)` counts.
pub type IntervalPanel = (String, Vec<(String, u64, u64, u64)>);

/// Figure 6: pause counts per duration interval.
pub fn fig6_intervals(runs: &[CollectorRuns]) -> Vec<IntervalPanel> {
    runs.iter()
        .map(|r| {
            let g1 = r.g1.interval_histogram();
            let ng2c = r.ng2c.interval_histogram();
            let polm2 = r.polm2.interval_histogram();
            let rows = g1
                .bins()
                .iter()
                .zip(ng2c.bins())
                .zip(polm2.bins())
                .map(|((a, b), c)| (a.label(), a.count, b.count, c.count))
                .collect();
            (r.workload.to_string(), rows)
        })
        .collect()
}

/// Figure 7: throughput normalized to G1 (NG2C, C4, POLM2).
pub fn fig7_throughput(runs: &[CollectorRuns]) -> Vec<(String, f64, Option<f64>, f64)> {
    runs.iter()
        .map(|r| {
            let g1 = r.g1.mean_throughput();
            (
                r.workload.to_string(),
                r.ng2c.mean_throughput() / g1,
                r.c4.as_ref().map(|c4| c4.mean_throughput() / g1),
                r.polm2.mean_throughput() / g1,
            )
        })
        .collect()
}

/// One Figure 8 panel: `(t, G1, NG2C, POLM2, C4)` mean tx/s per bucket.
pub type TimelinePanel = (String, Vec<(u64, f64, f64, f64, Option<f64>)>);

/// Figure 8: a ten-minute transactions/second sample for the Cassandra
/// workloads, bucketed to `bucket_secs` for printing.
pub fn fig8_timeline(runs: &[CollectorRuns], bucket_secs: u64) -> Vec<TimelinePanel> {
    let start = SimTime::from_secs(5 * 60);
    let window = SimDuration::from_secs(10 * 60);
    runs.iter()
        .filter(|r| r.workload.starts_with("cassandra"))
        .map(|r| {
            let series = |res: &RunResult| res.throughput.series_window(start, window);
            let g1 = series(&r.g1);
            let ng2c = series(&r.ng2c);
            let polm2 = series(&r.polm2);
            let c4 = r.c4.as_ref().map(series);
            let buckets = g1.len() as u64 / bucket_secs;
            let mut rows = Vec::new();
            for b in 0..buckets {
                let lo = (b * bucket_secs) as usize;
                let hi = ((b + 1) * bucket_secs) as usize;
                let mean = |s: &[polm2_metrics::ThroughputSample]| {
                    if s.is_empty() || lo >= s.len() {
                        0.0
                    } else {
                        let hi = hi.min(s.len());
                        s[lo..hi].iter().map(|x| x.ops as f64).sum::<f64>() / (hi - lo) as f64
                    }
                };
                rows.push((
                    start.as_secs() + b * bucket_secs,
                    mean(&g1),
                    mean(&ng2c),
                    mean(&polm2),
                    c4.as_ref().map(|s| mean(s)),
                ));
            }
            (r.workload.to_string(), rows)
        })
        .collect()
}

/// Figure 9: max memory usage normalized to G1.
pub fn fig9_memory(runs: &[CollectorRuns]) -> Vec<(String, f64, f64, Option<f64>)> {
    runs.iter()
        .map(|r| {
            let g1 = r.g1.max_memory_bytes() as f64;
            (
                r.workload.to_string(),
                r.ng2c.max_memory_bytes() as f64 / g1,
                r.polm2.max_memory_bytes() as f64 / g1,
                r.c4.as_ref().map(|c| c.max_memory_bytes() as f64 / g1),
            )
        })
        .collect()
}

/// The Dumper-vs-jmap comparison of one workload (Figures 3 and 4).
#[derive(Debug)]
pub struct SnapshotComparison {
    /// Workload name.
    pub workload: &'static str,
    /// The first snapshots taken with the CRIU Dumper.
    pub criu: SnapshotSeries,
    /// The first snapshots taken with jmap.
    pub jmap: SnapshotSeries,
}

impl SnapshotComparison {
    /// Mean capture time, Dumper normalized to jmap.
    pub fn time_ratio(&self) -> f64 {
        self.criu.total_capture_time().as_micros() as f64
            / self.jmap.total_capture_time().as_micros().max(1) as f64
    }

    /// Mean snapshot size, Dumper normalized to jmap.
    pub fn size_ratio(&self) -> f64 {
        self.criu.total_size_bytes() as f64 / self.jmap.total_size_bytes().max(1) as f64
    }
}

/// Figures 3–4: takes the first `max_snapshots` snapshots of each workload
/// with the Dumper and with jmap (separate, identical runs) and compares
/// cost.
pub fn fig3_4_snapshots(opts: &EvalOptions, max_snapshots: usize) -> Vec<SnapshotComparison> {
    let mut out = Vec::new();
    for workload in paper_workloads() {
        let w = workload.as_ref();
        eprintln!("[harness] snapshotting {} with criu-dumper", w.name());
        let criu = drive_with_dumper(w, Box::new(CriuDumper::new()), max_snapshots, opts);
        eprintln!("[harness] snapshotting {} with jmap", w.name());
        let jmap = drive_with_dumper(w, Box::new(JmapDumper::new()), max_snapshots, opts);
        out.push(SnapshotComparison {
            workload: w.name(),
            criu,
            jmap,
        });
    }
    out
}

/// Runs `workload` under G1 and captures a snapshot after every GC cycle
/// with `dumper`, until `max_snapshots` are taken or the profiling duration
/// elapses.
fn drive_with_dumper(
    workload: &dyn Workload,
    mut dumper: Box<dyn HeapDumper>,
    max_snapshots: usize,
    opts: &EvalOptions,
) -> SnapshotSeries {
    let config = opts.profile_config();
    let mut jvm = Jvm::builder(config.runtime)
        .hooks(workload.hooks())
        .state(workload.new_state(config.seed))
        .build(workload.program())
        .expect("program loads");
    let thread = jvm.spawn_thread();
    let (class, method) = workload.entry();
    let op_cost = workload.op_cost();
    let end = SimTime::ZERO + config.duration;
    let mut series = SnapshotSeries::new();
    let mut cycles_seen = 0;
    while jvm.now() < end && series.len() < max_snapshots {
        jvm.invoke(thread, class, method).expect("operation");
        jvm.advance_mutator(op_cost);
        let cycles = jvm.gc_log().cycle_count();
        if cycles > cycles_seen {
            cycles_seen = cycles;
            let now = jvm.now();
            series.push(dumper.snapshot(jvm.heap_mut(), now).expect("snapshot"));
        }
    }
    series
}
