//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation (see DESIGN.md §4 for the experiment index).
//!
//! Each `fig*`/`table1` binary drives the functions here and prints aligned
//! text tables; `EXPERIMENTS.md` records paper-reported vs. measured values.
//! All runs are deterministic (seeded workloads on simulated time), so the
//! numbers below are reproducible bit-for-bit.

#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]

pub mod experiments;
pub mod options;

pub use experiments::{
    fig3_4_snapshots, fig5_percentiles, fig6_intervals, fig7_throughput, fig8_timeline,
    fig9_memory, table1_profiling, CollectorRuns, SnapshotComparison, Table1Row,
};
pub use options::EvalOptions;
