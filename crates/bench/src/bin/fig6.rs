//! Regenerates Figure 6: number of application pauses per duration interval
//! for G1, NG2C, and POLM2 ("the less pauses to the right, the better").
//!
//! Usage: `cargo run --release -p polm2-bench --bin fig6 [-- --quick]`

use polm2_bench::experiments::collector_runs;
use polm2_bench::{fig6_intervals, EvalOptions};
use polm2_metrics::report::TextTable;

fn main() {
    let opts = EvalOptions::from_args();
    eprintln!("[fig6] {}", opts.label());
    let runs = collector_runs(&opts, false);
    let panels = fig6_intervals(&runs);

    println!("Figure 6: Number of Application Pauses Per Duration Interval (ms)");
    for (workload, rows) in &panels {
        let mut table = TextTable::new(vec![
            "interval".into(),
            "G1".into(),
            "NG2C".into(),
            "POLM2".into(),
        ]);
        for (label, g1, ng2c, polm2) in rows {
            table.add_row(vec![
                label.clone(),
                g1.to_string(),
                ng2c.to_string(),
                polm2.to_string(),
            ]);
        }
        println!("\n--- {workload} ---\n{}", table.render());
    }
}
