//! Regenerates Figure 5: pause-time percentiles (ms) for G1, NG2C, and
//! POLM2 across all six workloads.
//!
//! Usage: `cargo run --release -p polm2-bench --bin fig5 [-- --quick]`

use polm2_bench::experiments::collector_runs;
use polm2_bench::{fig5_percentiles, EvalOptions};
use polm2_metrics::report::{percent_reduction, TextTable};

fn main() {
    let opts = EvalOptions::from_args();
    eprintln!("[fig5] {}", opts.label());
    let runs = collector_runs(&opts, false);
    let panels = fig5_percentiles(&runs);

    println!("Figure 5: Pause Time Percentiles (ms)");
    for (workload, ladder) in &panels {
        let mut table = TextTable::new(vec![
            "percentile".into(),
            "G1 (ms)".into(),
            "NG2C (ms)".into(),
            "POLM2 (ms)".into(),
            "POLM2 vs G1".into(),
        ]);
        for &(p, g1, ng2c, polm2) in ladder {
            let label = if p >= 100.0 {
                "worst".to_string()
            } else {
                format!("{p}")
            };
            table.add_row(vec![
                label,
                g1.to_string(),
                ng2c.to_string(),
                polm2.to_string(),
                percent_reduction(polm2 as f64, g1 as f64),
            ]);
        }
        println!("\n--- {workload} ---\n{}", table.render());
    }

    println!("\npause counts (measured window):");
    for r in &runs {
        println!(
            "  {:>14}: G1 {:>6}  NG2C {:>6}  POLM2 {:>6}",
            r.workload,
            r.g1.pause_histogram().len(),
            r.ng2c.pause_histogram().len(),
            r.polm2.pause_histogram().len(),
        );
    }
}
