//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. The Dumper's two optimizations (no-need filtering, incremental
//!    capture), each toggled independently — what each buys (paper §3.2).
//! 2. Conflict resolution: POLM2 with the STTree's call-site wrappers
//!    stripped (site-only @Gen annotation, path-blind) vs full POLM2 — what
//!    Algorithm 1 buys (paper §5.4's "misplaced annotations" story, run on
//!    the generated profile itself).
//!
//! Usage: `cargo run --release -p polm2-bench --bin ablation [-- --quick|--standard]`

use polm2_bench::EvalOptions;
use polm2_core::{AllocationProfile, PretenuredSite};
use polm2_metrics::report::TextTable;
use polm2_metrics::SimTime;
use polm2_runtime::Jvm;
use polm2_snapshot::{CriuDumper, DumperOptions, HeapDumper, SnapshotSeries};
use polm2_workloads::cassandra::CassandraWorkload;
use polm2_workloads::{profile_workload, run_workload, CollectorSetup, Workload};

fn main() {
    let opts = EvalOptions::from_args();
    eprintln!("[ablation] {}", opts.label());

    dumper_ablation(&opts);
    conflict_ablation(&opts);
    binary_pretenuring_ablation(&opts);
}

/// Part 3: N generations vs *binary* pretenuring (one tenured space for
/// everything, as in Memento — paper §6.1): collapse every profile
/// generation to generation 2 and compare. Co-locating different lifetimes
/// in one space brings back compaction work.
fn binary_pretenuring_ablation(opts: &EvalOptions) {
    let workload = CassandraWorkload::write_intensive();
    let profile = profile_workload(&workload, &opts.profile_config())
        .expect("profiling")
        .outcome
        .profile;

    let mut binary = AllocationProfile::new();
    for site in profile.sites() {
        binary.add_site(PretenuredSite {
            loc: site.loc.clone(),
            gen: polm2_heap::GenId::new(2),
            local: site.local,
        });
    }
    for call in profile.gen_calls() {
        binary.add_gen_call(polm2_core::GenCall {
            at: call.at.clone(),
            gen: polm2_heap::GenId::new(2),
        });
    }

    let run_config = opts.run_config();
    let multi = run_workload(&workload, &CollectorSetup::Polm2(profile), &run_config)
        .expect("multi-generation run");
    let single =
        run_workload(&workload, &CollectorSetup::Polm2(binary), &run_config).expect("binary run");

    let mut table = TextTable::new(vec![
        "setup".into(),
        "worst pause (ms)".into(),
        "total stop".into(),
        "compacted (MiB)".into(),
        "regions freed whole".into(),
    ]);
    for (label, r) in [
        ("binary pretenuring (Memento-style)", &single),
        ("POLM2 (N generations)", &multi),
    ] {
        let work = r.gc_log.total_work();
        table.add_row(vec![
            label.into(),
            r.pause_histogram()
                .max()
                .unwrap_or_default()
                .as_millis()
                .to_string(),
            r.gc_log.total_pause().to_string(),
            (work.compacted_bytes >> 20).to_string(),
            work.freed_regions.to_string(),
        ]);
    }
    println!("\nAblation 3: one tenured space vs per-lifetime generations (cassandra-wi)");
    println!("{}", table.render());
}

/// Part 1: snapshot cost with each Dumper optimization toggled.
fn dumper_ablation(opts: &EvalOptions) {
    let workload = CassandraWorkload::write_intensive();
    let variants = [
        ("both optimizations", DumperOptions::default()),
        (
            "no-need only",
            DumperOptions {
                use_incremental: false,
                ..DumperOptions::default()
            },
        ),
        (
            "incremental only",
            DumperOptions {
                use_no_need: false,
                ..DumperOptions::default()
            },
        ),
        (
            "neither (raw CRIU)",
            DumperOptions {
                use_no_need: false,
                use_incremental: false,
                ..DumperOptions::default()
            },
        ),
    ];
    let mut table = TextTable::new(vec![
        "dumper variant".into(),
        "mean size".into(),
        "mean stop".into(),
        "total stop".into(),
        "snapshots".into(),
    ]);
    for (label, options) in variants {
        let series = snapshot_series(&workload, CriuDumper::with_options(options), opts);
        table.add_row(vec![
            label.into(),
            polm2_metrics::report::bytes(series.mean_size_bytes()),
            (series.total_capture_time() / series.len().max(1) as u64).to_string(),
            series.total_capture_time().to_string(),
            series.len().to_string(),
        ]);
    }
    println!("Ablation 1: Dumper optimizations (cassandra-wi, first 12 snapshots)");
    println!("{}", table.render());
}

fn snapshot_series(
    workload: &dyn Workload,
    mut dumper: CriuDumper,
    opts: &EvalOptions,
) -> SnapshotSeries {
    let config = opts.profile_config();
    let mut jvm = Jvm::builder(config.runtime)
        .hooks(workload.hooks())
        .state(workload.new_state(config.seed))
        .build(workload.program())
        .expect("boot");
    let thread = jvm.spawn_thread();
    let (class, method) = workload.entry();
    let mut series = SnapshotSeries::new();
    let mut cycles = 0;
    let end = SimTime::ZERO + config.duration;
    while jvm.now() < end && series.len() < 12 {
        jvm.invoke(thread, class, method).expect("op");
        jvm.advance_mutator(workload.op_cost());
        if jvm.gc_log().cycle_count() > cycles {
            cycles = jvm.gc_log().cycle_count();
            let now = jvm.now();
            series.push(dumper.snapshot(jvm.heap_mut(), now).expect("snapshot"));
        }
    }
    series
}

/// Part 2: POLM2 with and without conflict resolution.
fn conflict_ablation(opts: &EvalOptions) {
    let workload = CassandraWorkload::write_intensive();
    let profile = profile_workload(&workload, &opts.profile_config())
        .expect("profiling")
        .outcome
        .profile;

    // Strip the STTree's output: keep the @Gen annotations but make every
    // site path-blind (site-local generation, no call-site wrappers) — what
    // a profiler without Algorithm 1 would emit.
    let mut stripped = AllocationProfile::new();
    for site in profile.sites() {
        stripped.add_site(PretenuredSite {
            loc: site.loc.clone(),
            gen: site.gen,
            local: true,
        });
    }

    let run_config = opts.run_config();
    let full = run_workload(&workload, &CollectorSetup::Polm2(profile), &run_config)
        .expect("full POLM2 run");
    let blind = run_workload(&workload, &CollectorSetup::Polm2(stripped), &run_config)
        .expect("path-blind run");
    let g1 = run_workload(&workload, &CollectorSetup::G1, &run_config).expect("G1 run");

    let mut table = TextTable::new(vec![
        "setup".into(),
        "p50 (ms)".into(),
        "p99 (ms)".into(),
        "worst (ms)".into(),
        "total stop".into(),
    ]);
    for (label, r) in [
        ("G1", &g1),
        ("POLM2 without conflict resolution", &blind),
        ("POLM2 (full)", &full),
    ] {
        let mut h = r.pause_histogram();
        table.add_row(vec![
            label.into(),
            h.percentile(50.0)
                .unwrap_or_default()
                .as_millis()
                .to_string(),
            h.percentile(99.0)
                .unwrap_or_default()
                .as_millis()
                .to_string(),
            h.max().unwrap_or_default().as_millis().to_string(),
            r.gc_log.total_pause().to_string(),
        ]);
    }
    println!("\nAblation 2: conflict resolution (cassandra-wi)");
    println!("{}", table.render());
    println!("(path-blind pretenuring sends short-lived helper allocations to old space)");
}
