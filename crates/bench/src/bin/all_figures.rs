//! Runs the entire evaluation in one process, sharing the collector runs
//! across Figures 5–9 (each individual `fig*` binary re-runs its own), plus
//! Table 1 and Figures 3–4. This is the binary used to record
//! EXPERIMENTS.md.
//!
//! Usage: `cargo run --release -p polm2-bench --bin all_figures [-- --standard|--quick]`

use polm2_bench::experiments::collector_runs;
use polm2_bench::{
    fig3_4_snapshots, fig5_percentiles, fig6_intervals, fig7_throughput, fig8_timeline,
    fig9_memory, table1_profiling, EvalOptions,
};
use polm2_metrics::report::{bytes, percent_reduction, TextTable};

fn main() {
    let opts = EvalOptions::from_args();
    eprintln!("[all_figures] {}", opts.label());

    // ---------------- Table 1 ----------------
    let rows = table1_profiling(&opts);
    let mut table = TextTable::new(vec![
        "Workload".into(),
        "# Instr. Alloc Sites (POLM2/NG2C of candidates)".into(),
        "# Used Generations".into(),
        "# Conflicts".into(),
        "allocs recorded".into(),
    ]);
    for r in &rows {
        table.add_row(vec![
            r.workload.into(),
            format!("{}/{} of {}", r.polm2_sites, r.manual_sites, r.candidates),
            format!("{}/{}", r.polm2_gens, r.manual_gens),
            format!("{}/{}", r.polm2_conflicts, r.manual_conflicts),
            r.recorded_allocs.to_string(),
        ]);
    }
    println!("\n==== Table 1: Application Profiling Metrics (POLM2/NG2C) ====");
    println!("{}", table.render());

    // ---------------- Figures 3-4 ----------------
    let comparisons = fig3_4_snapshots(&opts, 20);
    let mut table = TextTable::new(vec![
        "Workload".into(),
        "time ratio (Fig3)".into(),
        "size ratio (Fig4)".into(),
        "Dumper mean".into(),
        "jmap mean".into(),
    ]);
    for c in &comparisons {
        table.add_row(vec![
            c.workload.into(),
            format!("{:.4}", c.time_ratio()),
            format!("{:.4}", c.size_ratio()),
            bytes(c.criu.mean_size_bytes()),
            bytes(c.jmap.mean_size_bytes()),
        ]);
    }
    println!("\n==== Figures 3-4: Snapshot time/size, Dumper normalized to jmap ====");
    println!("{}", table.render());

    // ---------------- The shared collector runs ----------------
    let runs = collector_runs(&opts, true);

    // Figure 5.
    println!("\n==== Figure 5: Pause Time Percentiles (ms) ====");
    for (workload, ladder) in fig5_percentiles(&runs) {
        let mut table = TextTable::new(vec![
            "pct".into(),
            "G1".into(),
            "NG2C".into(),
            "POLM2".into(),
            "POLM2 vs G1".into(),
        ]);
        for (p, g1, ng2c, polm2) in ladder {
            let label = if p >= 100.0 {
                "worst".into()
            } else {
                format!("{p}")
            };
            table.add_row(vec![
                label,
                g1.to_string(),
                ng2c.to_string(),
                polm2.to_string(),
                percent_reduction(polm2 as f64, g1 as f64),
            ]);
        }
        println!("\n--- {workload} ---\n{}", table.render());
    }

    // Figure 6.
    println!("\n==== Figure 6: Pauses per duration interval ====");
    for (workload, rows) in fig6_intervals(&runs) {
        let mut table = TextTable::new(vec![
            "interval".into(),
            "G1".into(),
            "NG2C".into(),
            "POLM2".into(),
        ]);
        for (label, g1, ng2c, polm2) in rows {
            table.add_row(vec![
                label,
                g1.to_string(),
                ng2c.to_string(),
                polm2.to_string(),
            ]);
        }
        println!("\n--- {workload} ---\n{}", table.render());
    }

    // Figure 7.
    println!("\n==== Figure 7: Throughput normalized to G1 ====");
    let mut table = TextTable::new(vec![
        "Workload".into(),
        "NG2C/G1".into(),
        "C4/G1".into(),
        "POLM2/G1".into(),
        "G1 ops/s".into(),
    ]);
    for ((workload, ng2c, c4, polm2), r) in fig7_throughput(&runs).iter().zip(&runs) {
        table.add_row(vec![
            workload.clone(),
            format!("{ng2c:.3}"),
            c4.map(|v| format!("{v:.3}"))
                .unwrap_or_else(|| "n/a".into()),
            format!("{polm2:.3}"),
            format!("{:.0}", r.g1.mean_throughput()),
        ]);
    }
    println!("{}", table.render());

    // Figure 8 (condensed to 60-second buckets).
    println!("\n==== Figure 8: Cassandra tx/s, 10-minute sample (60 s buckets) ====");
    for (workload, rows) in fig8_timeline(&runs, 60) {
        let mut table = TextTable::new(vec![
            "t (s)".into(),
            "G1".into(),
            "NG2C".into(),
            "POLM2".into(),
            "C4".into(),
        ]);
        for (t, g1, ng2c, polm2, c4) in rows {
            table.add_row(vec![
                t.to_string(),
                format!("{g1:.0}"),
                format!("{ng2c:.0}"),
                format!("{polm2:.0}"),
                c4.map(|v| format!("{v:.0}"))
                    .unwrap_or_else(|| "n/a".into()),
            ]);
        }
        println!("\n--- {workload} ---\n{}", table.render());
    }

    // Figure 9.
    println!("\n==== Figure 9: Max memory normalized to G1 ====");
    let mut table = TextTable::new(vec![
        "Workload".into(),
        "NG2C/G1".into(),
        "POLM2/G1".into(),
        "C4/G1".into(),
        "G1 max".into(),
    ]);
    for ((workload, ng2c, polm2, c4), r) in fig9_memory(&runs).iter().zip(&runs) {
        table.add_row(vec![
            workload.clone(),
            format!("{ng2c:.3}"),
            format!("{polm2:.3}"),
            c4.map(|v| format!("{v:.3}"))
                .unwrap_or_else(|| "n/a".into()),
            bytes(r.g1.max_memory_bytes()),
        ]);
    }
    println!("{}", table.render());
}
