//! Regenerates Figure 8: Cassandra throughput (transactions/second), a
//! ten-minute sample per mix, for G1 / NG2C / POLM2 / C4.
//!
//! Usage: `cargo run --release -p polm2-bench --bin fig8 [-- --quick]`

use polm2_bench::experiments::collector_runs;
use polm2_bench::{fig8_timeline, EvalOptions};
use polm2_metrics::report::TextTable;

fn main() {
    let opts = EvalOptions::from_args();
    eprintln!("[fig8] {}", opts.label());
    let runs = collector_runs(&opts, true);
    // 30-second buckets: 20 printable rows over the 10-minute sample.
    let panels = fig8_timeline(&runs, 30);

    println!("Figure 8: Cassandra Throughput (transactions/second) - 10 minute sample");
    for (workload, rows) in &panels {
        let mut table = TextTable::new(vec![
            "t (s)".into(),
            "G1".into(),
            "NG2C".into(),
            "POLM2".into(),
            "C4".into(),
        ]);
        for &(t, g1, ng2c, polm2, c4) in rows {
            table.add_row(vec![
                t.to_string(),
                format!("{g1:.0}"),
                format!("{ng2c:.0}"),
                format!("{polm2:.0}"),
                c4.map(|v| format!("{v:.0}"))
                    .unwrap_or_else(|| "n/a".into()),
            ]);
        }
        println!("\n--- {workload} ---\n{}", table.render());
    }
}
