//! Regenerates Figure 9: maximum memory usage normalized to G1.
//!
//! C4 is included the way the paper describes it in prose: it pre-reserves
//! the whole heap, so its ratio lands near `heap size / G1's max usage`
//! ("close to 2 for Cassandra benchmarks").
//!
//! Usage: `cargo run --release -p polm2-bench --bin fig9 [-- --quick]`

use polm2_bench::experiments::collector_runs;
use polm2_bench::{fig9_memory, EvalOptions};
use polm2_metrics::report::{bytes, TextTable};

fn main() {
    let opts = EvalOptions::from_args();
    eprintln!("[fig9] {}", opts.label());
    let runs = collector_runs(&opts, true);
    let rows = fig9_memory(&runs);

    let mut table = TextTable::new(vec![
        "Workload".into(),
        "NG2C / G1".into(),
        "POLM2 / G1".into(),
        "C4 / G1 (prose)".into(),
        "G1 max".into(),
    ]);
    for ((workload, ng2c, polm2, c4), r) in rows.iter().zip(&runs) {
        table.add_row(vec![
            workload.clone(),
            format!("{ng2c:.3}"),
            format!("{polm2:.3}"),
            c4.map(|v| format!("{v:.3}"))
                .unwrap_or_else(|| "n/a".into()),
            bytes(r.g1.max_memory_bytes()),
        ]);
    }
    println!("Figure 9: Application Max Memory Usage normalized to G1");
    println!("{}", table.render());
    println!("(paper: G1 ~= NG2C ~= POLM2; C4 would be close to 2 for Cassandra)");
}
