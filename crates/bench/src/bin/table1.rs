//! Regenerates Table 1: application profiling metrics, POLM2 vs NG2C.
//!
//! Usage: `cargo run --release -p polm2-bench --bin table1 [-- --quick]`

use polm2_bench::{table1_profiling, EvalOptions};
use polm2_metrics::report::TextTable;

fn main() {
    let opts = EvalOptions::from_args();
    eprintln!("[table1] {}", opts.label());
    let rows = table1_profiling(&opts);

    let mut table = TextTable::new(vec![
        "Workload".into(),
        "# Instrumented Alloc Sites (POLM2/NG2C of candidates)".into(),
        "# Used Generations".into(),
        "# Conflicts Encountered".into(),
        "allocs recorded".into(),
    ]);
    for r in &rows {
        table.add_row(vec![
            r.workload.into(),
            format!("{}/{} of {}", r.polm2_sites, r.manual_sites, r.candidates),
            format!("{}/{}", r.polm2_gens, r.manual_gens),
            format!("{}/{}", r.polm2_conflicts, r.manual_conflicts),
            r.recorded_allocs.to_string(),
        ]);
    }
    println!("Table 1: Application Profiling Metrics for POLM2/NG2C");
    println!("{}", table.render());
    println!("profiles:");
    for r in &rows {
        println!("--- {} ---\n{}", r.workload, r.profile);
    }
}
