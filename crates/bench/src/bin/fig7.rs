//! Regenerates Figure 7: application throughput normalized to G1 (NG2C, C4,
//! POLM2).
//!
//! Usage: `cargo run --release -p polm2-bench --bin fig7 [-- --quick]`

use polm2_bench::experiments::collector_runs;
use polm2_bench::{fig7_throughput, EvalOptions};
use polm2_metrics::report::TextTable;

fn main() {
    let opts = EvalOptions::from_args();
    eprintln!("[fig7] {}", opts.label());
    let runs = collector_runs(&opts, true);
    let rows = fig7_throughput(&runs);

    let mut table = TextTable::new(vec![
        "Workload".into(),
        "NG2C / G1".into(),
        "C4 / G1".into(),
        "POLM2 / G1".into(),
        "G1 ops/s".into(),
    ]);
    for ((workload, ng2c, c4, polm2), r) in rows.iter().zip(&runs) {
        table.add_row(vec![
            workload.clone(),
            format!("{ng2c:.3}"),
            c4.map(|v| format!("{v:.3}"))
                .unwrap_or_else(|| "n/a".into()),
            format!("{polm2:.3}"),
            format!("{:.0}", r.g1.mean_throughput()),
        ]);
    }
    println!("Figure 7: Application throughput normalized to G1");
    println!("{}", table.render());
    println!("(paper: POLM2 ~= NG2C, +1..+18% on Cassandra, -1..-5% elsewhere; C4 worst)");
}
