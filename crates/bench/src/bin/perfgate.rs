//! Perf gate for the Analyzer's replay path.
//!
//! Times the seed implementation (sequential hash-probe replay) against the
//! columnar merge replay, sequential and parallel, on three synthetic
//! workload sizes, verifies all variants produce identical
//! [`AnalysisOutcome`]s, and writes the medians to `BENCH_analyzer.json`.
//!
//! ```text
//! perfgate [--quick] [--min-speedup <x>] [--out <path>]
//! ```
//!
//! * `--quick` — fewer timed runs (CI smoke; the equality gate still runs).
//! * `--min-speedup <x>` — exit non-zero unless the parallel merge path is
//!   at least `x` times faster than the sequential hash-probe baseline on
//!   the largest workload.
//! * `--out <path>` — where to write the JSON (default `BENCH_analyzer.json`).
//!
//! Exits non-zero if any variant's outcome differs from the baseline.

use std::time::Instant;

use polm2_core::{AllocationRecords, AnalysisOutcome, Analyzer, AnalyzerConfig, ReplayStrategy};
use polm2_heap::{Heap, HeapConfig, IdentityHash, ObjectId};
use polm2_metrics::{SimDuration, SimTime};
use polm2_runtime::{
    ClassDef, Instr, LoadedProgram, Loader, MethodDef, Program, SizeSpec, TraceFrame,
};
use polm2_snapshot::{Snapshot, SnapshotSeries};

struct Workload {
    name: &'static str,
    records: u64,
    snapshots: u32,
}

const WORKLOADS: &[Workload] = &[
    Workload {
        name: "small",
        records: 10_000,
        snapshots: 8,
    },
    Workload {
        name: "medium",
        records: 50_000,
        snapshots: 16,
    },
    Workload {
        name: "large",
        records: 120_000,
        snapshots: 32,
    },
];

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Builds a deterministic synthetic profiling run: `records` allocations
/// spread over a few hundred distinct traces, `snapshots` heap snapshots
/// with per-trace lifespan bias so survival histograms are non-trivial.
fn build_inputs(w: &Workload) -> (AllocationRecords, SnapshotSeries, LoadedProgram) {
    let mut rng = 0x5eed_0000_0000_0001u64 ^ (w.records << 8) ^ u64::from(w.snapshots);
    const CLASSES: usize = 32;
    const METHODS: usize = 8;
    let mut program = Program::new();
    for c in 0..CLASSES {
        let mut class = ClassDef::new(format!("Class{c}"));
        for m in 0..METHODS {
            class = class.with_method(MethodDef::new(format!("method{m}")).push(Instr::alloc(
                "Obj",
                SizeSpec::Fixed(32),
                1,
            )));
        }
        program.add_class(class);
    }
    let mut heap = Heap::new(HeapConfig::small());
    let loaded = Loader::load(program, &mut [], &mut heap).expect("load");

    let traces: Vec<Vec<TraceFrame>> = (0..512)
        .map(|_| {
            let depth = 1 + (xorshift(&mut rng) % 5) as usize;
            (0..depth)
                .map(|_| TraceFrame {
                    class_idx: (xorshift(&mut rng) % CLASSES as u64) as u16,
                    method_idx: (xorshift(&mut rng) % METHODS as u64) as u16,
                    line: 1 + (xorshift(&mut rng) % 60) as u32,
                })
                .collect()
        })
        .collect();
    let biases: Vec<u64> = (0..traces.len())
        .map(|_| xorshift(&mut rng) % (u64::from(w.snapshots) + 1))
        .collect();

    let mut records = AllocationRecords::default();
    let mut live: Vec<Vec<IdentityHash>> = vec![Vec::new(); w.snapshots as usize];
    for object in 0..w.records {
        let t = (xorshift(&mut rng) % traces.len() as u64) as usize;
        let hash = IdentityHash::of(ObjectId::new(object + 1));
        records.record(&traces[t], hash);
        let jitter = xorshift(&mut rng) % 4;
        let lifespan = (biases[t] + jitter).min(u64::from(w.snapshots));
        for snap in live.iter_mut().take(lifespan as usize) {
            snap.push(hash);
        }
    }
    let series: SnapshotSeries = live
        .into_iter()
        .enumerate()
        .map(|(seq, hashes)| {
            Snapshot::new(
                seq as u32,
                SimTime::from_secs(seq as u64),
                hashes.iter().copied().collect(),
                4096,
                SimDuration::from_millis(1),
            )
        })
        .collect();
    (records, series, loaded)
}

fn config(replay: ReplayStrategy, parallelism: usize) -> AnalyzerConfig {
    AnalyzerConfig {
        replay,
        parallelism,
        min_survivals: 1,
        ..AnalyzerConfig::default()
    }
}

/// Median ns/record over `runs` timed runs (after one warmup), plus the
/// outcome of the last run for the equality gate.
fn measure(
    inputs: &(AllocationRecords, SnapshotSeries, LoadedProgram),
    cfg: &AnalyzerConfig,
    records: u64,
    runs: usize,
) -> (u64, AnalysisOutcome) {
    let analyzer = Analyzer::new(*cfg);
    let mut outcome = analyzer.analyze(&inputs.0, &inputs.1, &inputs.2); // warmup
    let mut samples: Vec<u64> = Vec::with_capacity(runs);
    for _ in 0..runs {
        let start = Instant::now();
        outcome = analyzer.analyze(&inputs.0, &inputs.1, &inputs.2);
        samples.push(start.elapsed().as_nanos() as u64 / records.max(1));
    }
    samples.sort_unstable();
    (samples[samples.len() / 2], outcome)
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let mut quick = false;
    let mut min_speedup: Option<f64> = None;
    let mut out_path = String::from("BENCH_analyzer.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--min-speedup" => {
                let v = args.next().expect("--min-speedup needs a value");
                min_speedup = Some(v.parse().expect("--min-speedup needs a number"));
            }
            "--out" => out_path = args.next().expect("--out needs a path"),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    let runs = if quick { 3 } else { 7 };
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(4);

    println!("perfgate: analyzer replay, {runs} runs/variant, parallel workers = {parallelism}");
    println!(
        "{:<8} {:>9} {:>5} | {:>14} {:>14} {:>14} | {:>8}",
        "size", "records", "snaps", "seq-probe", "seq-merge", "par-merge", "speedup"
    );

    let mut rows = Vec::new();
    let mut diverged = false;
    let mut large_speedup = 0.0f64;
    for w in WORKLOADS {
        let inputs = build_inputs(w);
        let (seq_ns, baseline) = measure(
            &inputs,
            &config(ReplayStrategy::HashProbe, 1),
            w.records,
            runs,
        );
        let (merge_ns, merge_out) = measure(
            &inputs,
            &config(ReplayStrategy::SortedMerge, 1),
            w.records,
            runs,
        );
        let (par_ns, par_out) = measure(
            &inputs,
            &config(ReplayStrategy::SortedMerge, parallelism),
            w.records,
            runs,
        );
        let identical = merge_out == baseline && par_out == baseline;
        if !identical {
            diverged = true;
            eprintln!(
                "FAIL: {} outputs diverge from the sequential baseline",
                w.name
            );
        }
        let speedup = seq_ns as f64 / par_ns.max(1) as f64;
        if w.name == "large" {
            large_speedup = speedup;
        }
        println!(
            "{:<8} {:>9} {:>5} | {:>11} ns {:>11} ns {:>11} ns | {:>7.2}x",
            w.name, w.records, w.snapshots, seq_ns, merge_ns, par_ns, speedup
        );
        rows.push(format!(
            concat!(
                "    {{\"name\": \"{}\", \"records\": {}, \"snapshots\": {}, ",
                "\"sequential_hashprobe_ns_per_record\": {}, ",
                "\"sequential_merge_ns_per_record\": {}, ",
                "\"parallel_merge_ns_per_record\": {}, ",
                "\"parallel_workers\": {}, ",
                "\"speedup_parallel_merge_vs_seed\": {:.2}, ",
                "\"outputs_identical\": {}}}"
            ),
            json_escape(w.name),
            w.records,
            w.snapshots,
            seq_ns,
            merge_ns,
            par_ns,
            parallelism,
            speedup,
            identical
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"analyzer_replay\",\n  \"units\": \"median ns/record, {} runs\",\n  \"workloads\": [\n{}\n  ]\n}}\n",
        runs,
        rows.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write bench json");
    println!("wrote {out_path}");

    if diverged {
        std::process::exit(1);
    }
    if let Some(min) = min_speedup {
        if large_speedup < min {
            eprintln!("FAIL: large-workload speedup {large_speedup:.2}x below required {min:.2}x");
            std::process::exit(1);
        }
        println!("speedup gate passed: {large_speedup:.2}x >= {min:.2}x");
    }
}
