//! Perf gates for the three optimized paths: Analyzer replay, the online
//! GC+snapshot pipeline, and the allocation recorder.
//!
//! **Analyzer gate** — times the seed implementation (sequential hash-probe
//! replay) against the columnar merge replay, sequential and parallel, on
//! three synthetic workload sizes, verifies all variants produce identical
//! [`AnalysisOutcome`]s, and writes the medians to `BENCH_analyzer.json`.
//! The parallel variant reports the execution mode the analyzer actually
//! chose (small inputs auto-fall back to sequential).
//!
//! **Pipeline gate** — times full GC+snapshot cycles on a churn workload
//! (a large stable old generation plus a young garbage wave per cycle)
//! three ways: a seed-equivalent emulation (fresh hash-set trace plus
//! hash-set no-need walk per snapshot, the pre-slab online path), the
//! optimized path with snapshot live-set reuse disabled (fresh epoch-mark
//! trace per snapshot), and the full zero-retrace path. All three runs
//! drive bit-identical heap trajectories; the produced snapshot sequences
//! are compared field by field. Medians land in `BENCH_pipeline.json`.
//!
//! **Recorder gate** — replays one deterministic call/return/alloc tape
//! through both recorder paths: the seed stack walk (clone the frame stack
//! per allocation, ingest materialized events) and the incremental trace
//! trie (context node maintained at push/pop, columnar buffers, memoized
//! node ingest). Both variants share the frame-stack bookkeeping, drain on
//! the same schedule, and must produce identical [`AllocationRecords`];
//! medians land in `BENCH_recorder.json`. A small real-runtime session is
//! also run both ways and folded into the equality gate.
//!
//! **GC gate** — drives identical collection trajectories (stable old
//! generation, churn waves with rotating survivor roots) through full
//! mark+evacuate cycles four ways: a seed-equivalent emulation (hash-set
//! BFS mark plus the per-object evacuation bookkeeping of the pre-slab
//! layout, timed against a mirrored table) and the real engine at 1, 2,
//! and 4 GC workers. Per-cycle heap fingerprints and `GcWork` accounting
//! must be bit-identical across all variants (the hard equality gate).
//! Wall-clock medians gate single-worker throughput against the serial
//! baseline; the 4-vs-1-worker pause speedup comes from the cost model's
//! Amdahl split over the measured work (per-byte and per-object charges
//! divide across workers; safepoint and region frees stay serial), since
//! wall-clock parallel speedups are not measurable on a single-CPU CI
//! host. Medians land in `BENCH_gc.json`.
//!
//! **Heap gate** — drives the GC-gate churn workload on the real-memory
//! heap backend (page-aligned regions, bump-allocated young, free-list
//! tenured, payloads actually written and memcpy'd) and on the simulated
//! backend. Measures real allocation cost (ns/object, header + payload
//! stores included) and copy/compact bandwidth (payload bytes memcpy'd per
//! collection wall-clock second) at 1, 2, and 4 GC workers with the
//! break-even tuning forced so multi-worker copies genuinely run. The hard
//! gate: per-cycle heap fingerprints, `GcWork` accounting, and streamed
//! snapshot sequences must be bit-identical between sim and real at every
//! worker count. Medians land in `BENCH_heap.json`.
//!
//! ```text
//! perfgate [--quick] [--workers <n>] [--min-speedup <x>]
//!          [--min-pipeline-speedup <x>] [--min-recorder-speedup <x>]
//!          [--min-gc-speedup <x>] [--min-heap-gbps <x>] [--out <path>]
//!          [--pipeline-out <path>] [--recorder-out <path>] [--gc-out <path>]
//!          [--heap-out <path>]
//! ```
//!
//! * `--quick` — fewer timed runs/cycles (CI smoke; equality gates still run).
//! * `--workers <n>` — worker count for the parallel replay variant
//!   (default: `available_parallelism` capped at 8).
//! * `--min-speedup <x>` — exit non-zero unless parallel merge replay beats
//!   the hash-probe baseline by `x` on the largest workload.
//! * `--min-pipeline-speedup <x>` — exit non-zero unless the zero-retrace
//!   cycle beats the seed-equivalent cycle by `x` on the largest workload.
//! * `--min-recorder-speedup <x>` — exit non-zero unless the trie recorder
//!   beats the stack walk by `x` ns/allocation on the largest workload
//!   (default 3.0; this gate is always on).
//! * `--min-gc-speedup <x>` — exit non-zero unless the modeled 4-worker
//!   pause beats the 1-worker pause by `x` on the largest workload
//!   (default 2.0; this gate is always on, as is the single-worker
//!   throughput floor at 95% of the serial baseline).
//! * `--min-heap-gbps <x>` — exit non-zero unless the real backend's best
//!   copy/compact bandwidth on the largest workload reaches `x` GB/s
//!   (default 0.05; this gate is always on, as is the sim/real equality
//!   hard gate).
//! * `--out <path>` — analyzer JSON path (default `BENCH_analyzer.json`).
//! * `--pipeline-out <path>` — pipeline JSON path (default
//!   `BENCH_pipeline.json`).
//! * `--recorder-out <path>` — recorder JSON path (default
//!   `BENCH_recorder.json`).
//! * `--gc-out <path>` — GC JSON path (default `BENCH_gc.json`).
//! * `--heap-out <path>` — heap-backend JSON path (default
//!   `BENCH_heap.json`).
//!
//! Exits non-zero if any variant's outputs differ from its baseline, a
//! speedup gate fails, or any committed default-path `BENCH_*.json` carries
//! a schema version older than [`SCHEMA_VERSION`] (stale results must be
//! regenerated in the same change that bumps the schema).

use std::collections::{HashSet, VecDeque};
use std::time::Instant;

use polm2_core::{
    AllocationRecords, AnalysisOutcome, Analyzer, AnalyzerConfig, Recorder, ReplayStrategy,
};
use polm2_gc::{Collector, G1Collector, GcConfig, GcWork, SafepointRoots};
use polm2_heap::{
    BackendKind, BuildIdHasher, Heap, HeapConfig, IdHashMap, IdHashSet, IdentityHash, ObjectId,
    ParallelTuning, RegionId, SiteId,
};
use polm2_metrics::{SimDuration, SimTime};
use polm2_runtime::{
    AllocEvent, AllocEventBuffer, ClassDef, Instr, Jvm, LoadedProgram, Loader, MethodDef, Program,
    RecorderPath, RuntimeConfig, SizeSpec, TraceFrame, TraceNodeId, TraceTrie,
};
use polm2_snapshot::{CriuDumper, DumperOptions, HeapDumper, Snapshot, SnapshotSeries};

/// Version of the emitted JSON schema. Bump when fields are added, removed,
/// or change meaning; the staleness check at the end of `main` fails the
/// gate until every committed default-path `BENCH_*.json` is regenerated at
/// this version.
const SCHEMA_VERSION: u32 = 2;

struct Workload {
    name: &'static str,
    records: u64,
    snapshots: u32,
}

const WORKLOADS: &[Workload] = &[
    Workload {
        name: "small",
        records: 10_000,
        snapshots: 8,
    },
    Workload {
        name: "medium",
        records: 50_000,
        snapshots: 16,
    },
    Workload {
        name: "large",
        records: 120_000,
        snapshots: 32,
    },
];

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Class/method grid shared by the analyzer and recorder gates: every
/// `TraceFrame` with `class_idx < CLASSES`, `method_idx < METHODS` resolves.
const CLASSES: usize = 32;
const METHODS: usize = 8;

fn grid_loaded() -> LoadedProgram {
    let mut program = Program::new();
    for c in 0..CLASSES {
        let mut class = ClassDef::new(format!("Class{c}"));
        for m in 0..METHODS {
            class = class.with_method(MethodDef::new(format!("method{m}")).push(Instr::alloc(
                "Obj",
                SizeSpec::Fixed(32),
                1,
            )));
        }
        program.add_class(class);
    }
    let mut heap = Heap::new(HeapConfig::small());
    Loader::load(program, &mut [], &mut heap).expect("load")
}

/// Builds a deterministic synthetic profiling run: `records` allocations
/// spread over a few hundred distinct traces, `snapshots` heap snapshots
/// with per-trace lifespan bias so survival histograms are non-trivial.
fn build_inputs(w: &Workload) -> (AllocationRecords, SnapshotSeries, LoadedProgram) {
    let mut rng = 0x5eed_0000_0000_0001u64 ^ (w.records << 8) ^ u64::from(w.snapshots);
    let loaded = grid_loaded();

    let traces: Vec<Vec<TraceFrame>> = (0..512)
        .map(|_| {
            let depth = 1 + (xorshift(&mut rng) % 5) as usize;
            (0..depth)
                .map(|_| TraceFrame {
                    class_idx: (xorshift(&mut rng) % CLASSES as u64) as u16,
                    method_idx: (xorshift(&mut rng) % METHODS as u64) as u16,
                    line: 1 + (xorshift(&mut rng) % 60) as u32,
                })
                .collect()
        })
        .collect();
    let biases: Vec<u64> = (0..traces.len())
        .map(|_| xorshift(&mut rng) % (u64::from(w.snapshots) + 1))
        .collect();

    let mut records = AllocationRecords::default();
    let mut live: Vec<Vec<IdentityHash>> = vec![Vec::new(); w.snapshots as usize];
    for object in 0..w.records {
        let t = (xorshift(&mut rng) % traces.len() as u64) as usize;
        let hash = IdentityHash::of(ObjectId::new(object + 1));
        records.record(&traces[t], hash);
        let jitter = xorshift(&mut rng) % 4;
        let lifespan = (biases[t] + jitter).min(u64::from(w.snapshots));
        for snap in live.iter_mut().take(lifespan as usize) {
            snap.push(hash);
        }
    }
    let series: SnapshotSeries = live
        .into_iter()
        .enumerate()
        .map(|(seq, hashes)| {
            Snapshot::new(
                seq as u32,
                SimTime::from_secs(seq as u64),
                hashes.iter().copied().collect(),
                4096,
                SimDuration::from_millis(1),
            )
        })
        .collect();
    (records, series, loaded)
}

fn config(replay: ReplayStrategy, parallelism: usize) -> AnalyzerConfig {
    AnalyzerConfig {
        replay,
        parallelism,
        min_survivals: 1,
        ..AnalyzerConfig::default()
    }
}

/// Median ns/record over `runs` timed runs (after one warmup), plus the
/// outcome of the last run for the equality gate.
fn measure(
    inputs: &(AllocationRecords, SnapshotSeries, LoadedProgram),
    cfg: &AnalyzerConfig,
    records: u64,
    runs: usize,
) -> (u64, AnalysisOutcome) {
    let analyzer = Analyzer::new(*cfg);
    let mut outcome = analyzer.analyze(&inputs.0, &inputs.1, &inputs.2); // warmup
    let mut samples: Vec<u64> = Vec::with_capacity(runs);
    for _ in 0..runs {
        let start = Instant::now();
        outcome = analyzer.analyze(&inputs.0, &inputs.1, &inputs.2);
        samples.push(start.elapsed().as_nanos() as u64 / records.max(1));
    }
    samples.sort_unstable();
    (samples[samples.len() / 2], outcome)
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

// ---------------------------------------------------------------------------
// Online pipeline gate
// ---------------------------------------------------------------------------

struct PipelineWorkload {
    name: &'static str,
    /// Rooted old-generation objects, all live for the whole run.
    stable_objects: u32,
    /// Unrooted young allocations per cycle, all dead by the next GC.
    churn_per_cycle: u32,
    /// Timed GC+snapshot cycles (one extra warmup cycle is untimed).
    cycles: usize,
}

const PIPELINE_WORKLOADS: &[PipelineWorkload] = &[
    PipelineWorkload {
        name: "small",
        stable_objects: 4_000,
        churn_per_cycle: 500,
        cycles: 6,
    },
    PipelineWorkload {
        name: "large",
        stable_objects: 30_000,
        churn_per_cycle: 3_000,
        cycles: 10,
    },
];

#[derive(Clone, Copy, PartialEq, Eq)]
enum PipelineVariant {
    /// Timed: GC + the seed's snapshot path, emulated (see
    /// [`seed_snapshot_cost`]). The real dumper advances heap state untimed.
    SeedEquivalent,
    /// Timed: GC + real snapshot with live-set reuse disabled (fresh
    /// epoch-mark trace per snapshot).
    FreshTrace,
    /// Timed: GC + real snapshot reusing the collector's published live set.
    Reuse,
}

/// The seed's object table, mirrored: the pre-slab heap kept every record
/// behind an `IdHashMap` probe. Rebuilt (untimed) after each GC so the timed
/// emulation runs the seed's algorithms over the seed's data layout.
struct SeedRecord {
    size: u32,
    region: RegionId,
    first_page: u32,
    last_page: u32,
    hash: IdentityHash,
    refs: Vec<ObjectId>,
}

fn build_seed_mirror(heap: &Heap) -> IdHashMap<ObjectId, SeedRecord> {
    let mut mirror: IdHashMap<ObjectId, SeedRecord> = IdHashMap::default();
    for space in heap.spaces() {
        for id in heap.objects_in_space(space.id()).expect("space exists") {
            let rec = heap.object(id).expect("listed object exists");
            let (first_page, last_page) = heap.page_table().pages_of(rec.addr(), rec.size());
            mirror.insert(
                id,
                SeedRecord {
                    size: rec.size(),
                    region: rec.addr().region,
                    first_page,
                    last_page,
                    hash: rec.identity_hash(),
                    refs: rec.refs().to_vec(),
                },
            );
        }
    }
    mirror
}

/// The seed's per-snapshot work, transcribed from the pre-optimization
/// sources: `mark_live` (BFS with a fresh visited hash-set, a hash-map probe
/// per edge, and hash-map region accounting), the Dumper's hash collection
/// (no pre-sizing), `mark_no_need_pages` (live pages accumulated into a
/// `HashSet`, then a per-page `contains` sweep over every assigned region),
/// the captured-page count, and `Snapshot::new`'s eager column sort.
///
/// Runs against the mirror, read-only; returns a checksum so the optimizer
/// cannot discard the work.
fn seed_snapshot_cost(heap: &Heap, mirror: &IdHashMap<ObjectId, SeedRecord>) -> u64 {
    // -- seed mark_live --
    let mut queue: VecDeque<ObjectId> = VecDeque::new();
    let mut order: Vec<ObjectId> = Vec::new();
    let mut live: IdHashSet<ObjectId> = IdHashSet::default();
    let mut live_bytes: u64 = 0;
    let mut region_live: IdHashMap<RegionId, u32> = IdHashMap::default();
    for id in heap.roots().iter() {
        if let Some(rec) = mirror.get(&id) {
            if live.insert(id) {
                order.push(id);
                live_bytes += u64::from(rec.size);
                *region_live.entry(rec.region).or_insert(0) += rec.size;
                queue.push_back(id);
            }
        }
    }
    let mut scratch: Vec<ObjectId> = Vec::new();
    while let Some(id) = queue.pop_front() {
        let rec = mirror.get(&id).expect("queued objects are live");
        scratch.clear();
        scratch.extend_from_slice(&rec.refs);
        for &child in &scratch {
            if let Some(child_rec) = mirror.get(&child) {
                if live.insert(child) {
                    order.push(child);
                    live_bytes += u64::from(child_rec.size);
                    *region_live.entry(child_rec.region).or_insert(0) += child_rec.size;
                    queue.push_back(child);
                }
            }
        }
    }
    // -- seed Dumper hash collection --
    let hashes: IdHashSet<IdentityHash> = live
        .iter()
        .filter_map(|id| mirror.get(id).map(|r| r.hash))
        .collect();
    // -- seed mark_no_need_pages --
    let mut live_pages: HashSet<u32, BuildIdHasher> = Default::default();
    for id in live.iter() {
        if let Some(rec) = mirror.get(id) {
            for p in rec.first_page..=rec.last_page {
                live_pages.insert(p);
            }
        }
    }
    let mut no_need = vec![false; heap.page_table().page_count() as usize];
    let mut marked = 0u64;
    for region in heap.regions() {
        if region.space().is_none() {
            continue;
        }
        let first = region.first_page().raw();
        for p in first..first + heap.config().pages_per_region() {
            let should = !live_pages.contains(&p);
            if should {
                marked += 1;
            }
            no_need[p as usize] = should;
        }
    }
    // -- seed captured-page count --
    let mut captured = 0u64;
    for (page, flags) in heap.page_table().iter().enumerate() {
        if flags.dirty && !no_need[page] {
            captured += 1;
        }
    }
    // -- seed Snapshot::new: eager sorted column --
    let mut sorted: Vec<u64> = hashes.iter().map(|h| u64::from(h.raw())).collect();
    sorted.sort_unstable();
    live_bytes.rotate_left(17)
        ^ order.len() as u64
        ^ region_live.len() as u64
        ^ marked.rotate_left(7)
        ^ captured
        ^ sorted.last().copied().unwrap_or(0)
}

/// One full pipeline run: identical heap trajectory for every variant, so
/// the snapshot sequences must come out bit-identical. Returns the per-cycle
/// timings (warmup excluded) and the snapshots for the equality gate.
fn run_pipeline(w: &PipelineWorkload, variant: PipelineVariant) -> (Vec<u64>, Vec<Snapshot>) {
    let mut heap = Heap::new(HeapConfig::paper_scaled());
    let mut gc = G1Collector::new(GcConfig::default());
    gc.attach(&mut heap);
    let old = heap
        .spaces()
        .iter()
        .map(|s| s.id())
        .find(|&id| id != Heap::YOUNG_SPACE)
        .expect("collector old space");

    // Stable old generation: star groups of 16 hanging off rooted hubs,
    // hubs chained together — the trace does real pointer chasing.
    let class = heap.classes_mut().intern("Stable");
    let keep = heap.roots_mut().create_slot("stable");
    let mut hub: Option<ObjectId> = None;
    for i in 0..w.stable_objects {
        let id = heap
            .allocate(class, 2_048, SiteId::new(i % 7), old)
            .expect("stable allocation");
        if i % 16 == 0 {
            heap.roots_mut().push(keep, id);
            if let Some(prev) = hub {
                heap.add_ref(prev, id).expect("hub chain");
            }
            hub = Some(id);
        } else {
            heap.add_ref(hub.expect("hub allocated first"), id)
                .expect("star edge");
        }
    }

    let churn_class = heap.classes_mut().intern("Churn");
    let mut dumper = CriuDumper::with_options(DumperOptions {
        reuse_live_set: variant == PipelineVariant::Reuse,
        ..DumperOptions::default()
    });
    let mut samples = Vec::with_capacity(w.cycles);
    let mut snaps = Vec::with_capacity(w.cycles);
    let mut sink = 0u64;
    for cycle in 0..w.cycles + 1 {
        for i in 0..w.churn_per_cycle {
            heap.allocate(
                churn_class,
                4_096,
                SiteId::new(8 + i % 5),
                Heap::YOUNG_SPACE,
            )
            .expect("churn allocation");
        }
        let (elapsed, snap) = match variant {
            PipelineVariant::SeedEquivalent => {
                let start = Instant::now();
                gc.collect(&mut heap, &SafepointRoots::none());
                let gc_time = start.elapsed();
                // The mirror rebuild stands in for the bookkeeping the seed
                // heap did throughout the cycle; it is not timed.
                let mirror = build_seed_mirror(&heap);
                let start = Instant::now();
                sink ^= seed_snapshot_cost(&heap, &mirror);
                let snap_time = start.elapsed();
                // Advance dirty/no-need state exactly like the other runs,
                // outside the timed window.
                let snap = dumper
                    .snapshot(&mut heap, SimTime::from_secs(cycle as u64))
                    .expect("snapshot");
                (gc_time + snap_time, snap)
            }
            PipelineVariant::FreshTrace | PipelineVariant::Reuse => {
                let start = Instant::now();
                gc.collect(&mut heap, &SafepointRoots::none());
                if variant == PipelineVariant::Reuse {
                    assert!(
                        heap.has_current_published_live(),
                        "the collector must have published a reusable live set"
                    );
                }
                let snap = dumper
                    .snapshot(&mut heap, SimTime::from_secs(cycle as u64))
                    .expect("snapshot");
                (start.elapsed(), snap)
            }
        };
        if cycle > 0 {
            samples.push(elapsed.as_nanos() as u64);
            snaps.push(snap);
        }
    }
    std::hint::black_box(sink);
    (samples, snaps)
}

fn median(mut samples: Vec<u64>) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn snapshots_equal(a: &Snapshot, b: &Snapshot) -> bool {
    a.seq == b.seq
        && a.at == b.at
        && a.live_objects == b.live_objects
        && a.size_bytes == b.size_bytes
        && a.capture_time == b.capture_time
        && a.sorted_hashes() == b.sorted_hashes()
}

// ---------------------------------------------------------------------------
// Recorder gate
// ---------------------------------------------------------------------------

struct RecorderWorkload {
    name: &'static str,
    /// Recorded allocations on the tape.
    allocs: u64,
    /// The stack depth the tape's push/pop walk hovers around.
    mean_depth: usize,
}

const RECORDER_WORKLOADS: &[RecorderWorkload] = &[
    RecorderWorkload {
        name: "small",
        allocs: 20_000,
        mean_depth: 8,
    },
    RecorderWorkload {
        name: "medium",
        allocs: 80_000,
        mean_depth: 16,
    },
    RecorderWorkload {
        name: "large",
        allocs: 200_000,
        mean_depth: 32,
    },
];

/// One step of a deterministic call/return/alloc tape. Both recorder
/// variants replay the same tape, so they observe the same frame stacks in
/// the same order and must produce identical records.
enum TapeOp {
    Push(TraceFrame),
    Pop,
    Alloc(IdentityHash),
}

/// Generates a tape that replays a *fixed pool* of call paths — the shape
/// real hotspot applications have (ROLP's premise: a bounded set of
/// allocation contexts visited over and over). Paths are grown from shared
/// prefixes (a call tree), each visit walks from the current stack to the
/// target path (popping to the common ancestor, pushing the rest) and
/// records a small burst of allocations at the leaf, like an allocation
/// loop in a method body. Frames resolve in [`grid_loaded`]'s program.
fn build_tape(w: &RecorderWorkload) -> Vec<TapeOp> {
    let mut rng = 0x7ec0_4dee_0000_0001u64 ^ (w.allocs << 8) ^ w.mean_depth as u64;
    let frame = |rng: &mut u64| TraceFrame {
        class_idx: (xorshift(rng) % CLASSES as u64) as u16,
        method_idx: (xorshift(rng) % METHODS as u64) as u16,
        line: 1 + (xorshift(rng) % 60) as u32,
    };
    // The path pool: each new path keeps a random-length prefix of an
    // existing one and descends with fresh frames to ~mean_depth.
    let mut paths: Vec<Vec<TraceFrame>> = vec![vec![frame(&mut rng)]];
    while paths.len() < 512 {
        let base = &paths[(xorshift(&mut rng) as usize) % paths.len()];
        let keep = 1 + (xorshift(&mut rng) as usize) % base.len();
        let mut path: Vec<TraceFrame> = base[..keep].to_vec();
        let depth = 1 + w.mean_depth / 2 + (xorshift(&mut rng) as usize) % w.mean_depth;
        while path.len() < depth {
            path.push(frame(&mut rng));
        }
        paths.push(path);
    }

    let mut tape = Vec::new();
    let mut current: Vec<TraceFrame> = Vec::new();
    let mut recorded = 0u64;
    let mut at = 0usize;
    while recorded < w.allocs {
        // Visit locality: drivers repeat an operation many times before
        // moving on, so most bursts happen in an unchanged context.
        if xorshift(&mut rng) % 10 >= 6 {
            at = (xorshift(&mut rng) as usize) % paths.len();
        }
        let target = &paths[at];
        let common = current
            .iter()
            .zip(target.iter())
            .take_while(|(a, b)| a == b)
            .count();
        for _ in common..current.len() {
            tape.push(TapeOp::Pop);
        }
        current.truncate(common);
        for &f in &target[common..] {
            tape.push(TapeOp::Push(f));
            current.push(f);
        }
        let burst = 1 + xorshift(&mut rng) % 8;
        for _ in 0..burst {
            if recorded >= w.allocs {
                break;
            }
            recorded += 1;
            tape.push(TapeOp::Alloc(IdentityHash::of(ObjectId::new(recorded))));
        }
    }
    for _ in 0..current.len() {
        tape.push(TapeOp::Pop);
    }
    tape
}

/// The seed recorder path, transcribed: maintain the frame stack, clone it
/// into a fresh `Vec<TraceFrame>` per allocation, buffer owning
/// `AllocEvent`s, and drain them through the materialized (per-frame
/// validating, per-frame interning) ingest.
fn run_recorder_stackwalk(
    program: &LoadedProgram,
    tape: &[TapeOp],
    drain_every: usize,
) -> (u64, AllocationRecords) {
    let mut recorder = Recorder::new();
    let mut stack: Vec<TraceFrame> = Vec::new();
    let mut pending: Vec<AllocEvent> = Vec::new();
    let mut object = 0u64;
    let start = Instant::now();
    for op in tape {
        match op {
            TapeOp::Push(f) => stack.push(*f),
            TapeOp::Pop => {
                stack.pop();
            }
            TapeOp::Alloc(hash) => {
                object += 1;
                pending.push(AllocEvent {
                    trace: stack.clone(),
                    object: ObjectId::new(object),
                    hash: *hash,
                    site: SiteId::new(0),
                    at: SimTime::ZERO,
                });
                if pending.len() >= drain_every {
                    recorder.ingest_checked(std::mem::take(&mut pending), program);
                }
            }
        }
    }
    recorder.ingest_checked(std::mem::take(&mut pending), program);
    let elapsed = start.elapsed().as_nanos() as u64;
    (elapsed, recorder.into_records().expect("sole owner"))
}

/// The trie recorder path: the same frame-stack bookkeeping, plus the
/// context node maintained at push/pop; each allocation is one child-edge
/// lookup and a columnar push, drained through the memoized node ingest.
fn run_recorder_trie(
    program: &LoadedProgram,
    tape: &[TapeOp],
    drain_every: usize,
) -> (u64, AllocationRecords) {
    let mut recorder = Recorder::new();
    let mut trie = TraceTrie::new();
    let mut stack: Vec<TraceFrame> = Vec::new();
    let mut context = TraceNodeId::ROOT;
    let mut buffer = AllocEventBuffer::new();
    let mut object = 0u64;
    let start = Instant::now();
    for op in tape {
        match op {
            TapeOp::Push(f) => {
                if let Some(&caller) = stack.last() {
                    context = trie.child(context, caller);
                }
                stack.push(*f);
            }
            TapeOp::Pop => {
                stack.pop();
                context = trie.parent(context);
            }
            TapeOp::Alloc(hash) => {
                object += 1;
                let top = *stack.last().expect("alloc executes in a frame");
                let node = trie.child(context, top);
                buffer.push(
                    node,
                    *hash,
                    ObjectId::new(object),
                    SiteId::new(0),
                    SimTime::ZERO,
                );
                if buffer.len() >= drain_every {
                    recorder.ingest_nodes_checked(&trie, program, &buffer);
                    buffer.clear();
                }
            }
        }
    }
    recorder.ingest_nodes_checked(&trie, program, &buffer);
    let elapsed = start.elapsed().as_nanos() as u64;
    (elapsed, recorder.into_records().expect("sole owner"))
}

/// Everything observable about an `AllocationRecords`, for the equality gate.
type RecordsFingerprint = (u64, Vec<(Vec<TraceFrame>, Vec<IdentityHash>)>);

fn records_fingerprint(r: &AllocationRecords) -> RecordsFingerprint {
    let per_trace = r
        .trace_ids()
        .map(|id| (r.trace(id), r.stream(id).to_vec()))
        .collect();
    (r.total_records(), per_trace)
}

/// Runs a real interpreter session under `path` and returns its records: the
/// end-to-end cross-check that the tape emulation cannot drift away from the
/// actual runtime.
fn run_real_session(path: RecorderPath) -> AllocationRecords {
    let mut program = Program::new();
    let mut chain = ClassDef::new("Deep");
    const DEPTH: usize = 24;
    for i in 0..DEPTH {
        let mut method = MethodDef::new(format!("m{i}"));
        if i + 1 < DEPTH {
            method = method.push(Instr::call("Deep", format!("m{}", i + 1), i as u32 + 1));
        }
        method = method.push(Instr::alloc("Obj", SizeSpec::Fixed(32), 40 + i as u32));
        chain = chain.with_method(method);
    }
    program.add_class(chain);
    let mut recorder = Recorder::new();
    let mut jvm = Jvm::builder(RuntimeConfig::small().with_recorder(path))
        .transformer(recorder.agent())
        .build(program)
        .expect("boot");
    let t = jvm.spawn_thread();
    for _ in 0..200 {
        jvm.invoke(t, "Deep", "m0").expect("invoke");
        jvm.drain_alloc_batches(|trie, program, batch| {
            recorder.ingest_nodes_checked(trie, program, batch);
        });
        if jvm.has_pending_alloc_events() {
            let events = jvm.drain_alloc_events();
            recorder.ingest_checked(events, jvm.program());
        }
    }
    recorder.into_records().expect("sole owner")
}

// ---------------------------------------------------------------------------
// GC mark+evacuate gate
// ---------------------------------------------------------------------------

struct GcGateWorkload {
    name: &'static str,
    /// Rooted old-generation objects, live for the whole run.
    stable_objects: u32,
    /// Young allocations per cycle; every 8th is rooted for roughly two
    /// cycles by a rotating slot, so each collection copies survivors,
    /// promotes, and later compacts the regions the dead wave leaves behind.
    churn_per_cycle: u32,
    /// Timed collection cycles (one extra warmup cycle is untimed).
    cycles: usize,
}

const GC_GATE_WORKLOADS: &[GcGateWorkload] = &[
    GcGateWorkload {
        name: "small",
        stable_objects: 4_000,
        churn_per_cycle: 1_500,
        cycles: 6,
    },
    GcGateWorkload {
        name: "large",
        stable_objects: 30_000,
        churn_per_cycle: 3_000,
        cycles: 10,
    },
];

/// One timed collection cycle's observables.
struct GcCycle {
    wall_ns: u64,
    work: GcWork,
    fingerprint: u64,
}

fn fnv_mix(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(0x0000_0100_0000_01b3)
}

/// Everything observable about the heap after a cycle, folded to one hash:
/// per-space object placement (id, region, offset, size, age), every page's
/// dirty/no-need bits, and the free pool size. Bit-identical trajectories
/// across worker counts must produce identical fingerprints.
fn gc_heap_fingerprint(heap: &Heap) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for space in heap.spaces() {
        for id in heap.objects_in_space(space.id()).expect("space exists") {
            let rec = heap.object(id).expect("listed object exists");
            h = fnv_mix(h, id.raw());
            h = fnv_mix(h, u64::from(rec.addr().region.raw()));
            h = fnv_mix(h, u64::from(rec.addr().offset));
            h = fnv_mix(h, u64::from(rec.size()));
            h = fnv_mix(h, u64::from(rec.age()));
        }
    }
    for flags in heap.page_table().iter() {
        h = fnv_mix(h, u64::from(flags.dirty) | u64::from(flags.no_need) << 1);
    }
    fnv_mix(h, u64::from(heap.free_region_count()))
}

/// The seed's per-pause mark+evacuate work, transcribed from the
/// pre-optimization sources: `mark_live` as a hash-set BFS (a map probe per
/// edge, hash-map region accounting — the pre-slab layout), then the young
/// evacuation loop's per-object bookkeeping: a map probe, a liveness probe,
/// survivor accounting, the vacated/destination page walks, and the
/// promotion buffer's ref clone. Runs against the mirror, read-only;
/// returns a checksum so the optimizer cannot discard the work.
fn seed_mark_evacuate_cost(heap: &Heap, mirror: &IdHashMap<ObjectId, SeedRecord>) -> u64 {
    // -- seed mark_live --
    let mut queue: VecDeque<ObjectId> = VecDeque::new();
    let mut live: IdHashSet<ObjectId> = IdHashSet::default();
    let mut live_bytes: u64 = 0;
    let mut region_live: IdHashMap<RegionId, u32> = IdHashMap::default();
    for id in heap.roots().iter() {
        if let Some(rec) = mirror.get(&id) {
            if live.insert(id) {
                live_bytes += u64::from(rec.size);
                *region_live.entry(rec.region).or_insert(0) += rec.size;
                queue.push_back(id);
            }
        }
    }
    let mut scratch: Vec<ObjectId> = Vec::new();
    while let Some(id) = queue.pop_front() {
        let rec = mirror.get(&id).expect("queued objects are live");
        scratch.clear();
        scratch.extend_from_slice(&rec.refs);
        for &child in &scratch {
            if let Some(child_rec) = mirror.get(&child) {
                if live.insert(child) {
                    live_bytes += u64::from(child_rec.size);
                    *region_live.entry(child_rec.region).or_insert(0) += child_rec.size;
                    queue.push_back(child);
                }
            }
        }
    }
    // -- seed evacuate_young --
    let mut checksum = live_bytes ^ live.len() as u64;
    let mut survivor_bytes = 0u64;
    let mut promoted: Vec<ObjectId> = Vec::new();
    for id in heap
        .objects_in_space(Heap::YOUNG_SPACE)
        .expect("young space")
    {
        let rec = mirror.get(&id).expect("young object mirrored");
        if !live.contains(&id) {
            // Dead: the vacated page range is walked for occupancy updates.
            for p in rec.first_page..=rec.last_page {
                checksum = checksum.rotate_left(1) ^ u64::from(p);
            }
            continue;
        }
        survivor_bytes += u64::from(rec.size);
        // Survivor: destination page walk (dirty, no-need, occupancy) plus
        // the vacated range.
        for p in rec.first_page..=rec.last_page {
            checksum = checksum.rotate_left(3) ^ u64::from(p);
        }
        checksum ^= u64::from(region_live.get(&rec.region).copied().unwrap_or(0));
        promoted.push(id);
    }
    // The promotion buffer: the seed cloned each promoted object's refs to
    // rebuild the remembered set after the move.
    let mut remembered: Vec<ObjectId> = Vec::new();
    for id in &promoted {
        remembered.extend_from_slice(&mirror.get(id).expect("promoted object").refs);
    }
    checksum ^ survivor_bytes.rotate_left(13) ^ remembered.len() as u64
}

/// One full GC-gate run: the heap trajectory is a pure function of the
/// workload, so every worker count (and the seed emulation, which advances
/// state with the real collector untimed) must produce identical per-cycle
/// fingerprints and work accounting.
fn run_gc_gate(w: &GcGateWorkload, workers: usize, seed_equivalent: bool) -> Vec<GcCycle> {
    let mut heap = Heap::new(HeapConfig::paper_scaled());
    let mut gc = G1Collector::new(GcConfig {
        gc_workers: workers,
        ..GcConfig::default()
    });
    gc.attach(&mut heap);
    let old = heap
        .spaces()
        .iter()
        .map(|s| s.id())
        .find(|&id| id != Heap::YOUNG_SPACE)
        .expect("collector old space");

    // Stable old generation: star groups of 16 hanging off rooted hubs,
    // hubs chained together — the mark does real pointer chasing.
    let class = heap.classes_mut().intern("Stable");
    let keep = heap.roots_mut().create_slot("stable");
    let mut hub: Option<ObjectId> = None;
    for i in 0..w.stable_objects {
        let id = heap
            .allocate(class, 2_048, SiteId::new(i % 7), old)
            .expect("stable allocation");
        if i % 16 == 0 {
            heap.roots_mut().push(keep, id);
            if let Some(prev) = hub {
                heap.add_ref(prev, id).expect("hub chain");
            }
            hub = Some(id);
        } else {
            heap.add_ref(hub.expect("hub allocated first"), id)
                .expect("star edge");
        }
    }

    let churn_class = heap.classes_mut().intern("Churn");
    let waves = [
        heap.roots_mut().create_slot("wave-a"),
        heap.roots_mut().create_slot("wave-b"),
    ];
    let mut out = Vec::with_capacity(w.cycles);
    let mut sink = 0u64;
    for cycle in 0..w.cycles + 1 {
        // Rotate the survivor roots: last cycle's wave dies, this cycle's
        // survives the collection and is promoted.
        heap.roots_mut().clear_slot(waves[cycle % 2]);
        for i in 0..w.churn_per_cycle {
            let id = heap
                .allocate(
                    churn_class,
                    4_096,
                    SiteId::new(8 + i % 5),
                    Heap::YOUNG_SPACE,
                )
                .expect("churn allocation");
            if i % 8 == 0 {
                heap.roots_mut().push(waves[cycle % 2], id);
            }
        }
        let (wall_ns, pauses) = if seed_equivalent {
            // The mirror rebuild stands in for the bookkeeping the seed heap
            // did throughout the cycle; it is not timed. The real collector
            // advances the trajectory outside the timed window.
            let mirror = build_seed_mirror(&heap);
            let start = Instant::now();
            sink ^= seed_mark_evacuate_cost(&heap, &mirror);
            let ns = start.elapsed().as_nanos() as u64;
            (ns, gc.collect(&mut heap, &SafepointRoots::none()))
        } else {
            let start = Instant::now();
            let pauses = gc.collect(&mut heap, &SafepointRoots::none());
            (start.elapsed().as_nanos() as u64, pauses)
        };
        if cycle > 0 {
            let work = pauses
                .iter()
                .fold(GcWork::default(), |acc, p| acc.merged(p.work));
            out.push(GcCycle {
                wall_ns,
                work,
                fingerprint: gc_heap_fingerprint(&heap),
            });
        }
    }
    std::hint::black_box(sink);
    out
}

// ---------------------------------------------------------------------------
// Real-memory heap backend gate
// ---------------------------------------------------------------------------

/// One heap-gate run's observables: the per-cycle trajectory (heap
/// fingerprint + merged `GcWork`), the streamed snapshot sequence, and the
/// raw material for the allocation-cost and copy-bandwidth figures.
struct HeapGateRun {
    /// Per timed cycle: heap fingerprint and merged collection work.
    cycles: Vec<(u64, GcWork)>,
    /// Streamed snapshots, one per timed cycle.
    snaps: Vec<Snapshot>,
    /// Wall-clock spent inside `Heap::allocate` calls, and how many.
    alloc_ns: u64,
    allocs: u64,
    /// Payload bytes the backend memcpy'd across the run (0 on sim).
    copied_bytes: u64,
    /// Wall-clock of the collections that did the copying.
    collect_ns: u64,
    /// Wall-clock spent inside the evacuation copy phases alone — the
    /// phase-accurate denominator for copy bandwidth (collection wall-clock
    /// also pays mark, planning, and fix-up, which PR 8's figure wrongly
    /// charged to the copier).
    copy_phase_ns: u64,
    /// Critical-path bytes of those copy phases: each phase's largest
    /// destination-region shard, summed. Equals `copied_bytes` at one
    /// worker; `copied_bytes / copy_critical_bytes` is the partition's
    /// modeled parallel speedup (the single-CPU host cannot show wall-clock
    /// copy scaling, same convention as the GC arm's Amdahl split).
    copy_critical_bytes: u64,
    /// TLAB window refills on the allocation path.
    tlab_refills: u64,
}

/// Drives the GC-gate churn workload on the given backend and worker count,
/// with the parallel break-even tuning forced so multi-worker copies run
/// even on a single-CPU host. Each cycle also streams a snapshot off the
/// heap — on the real backend the hash column comes out of the object
/// headers the backend wrote, so snapshot equality checks the payload
/// stores end to end.
fn run_heap_gate(w: &GcGateWorkload, workers: usize, backend: BackendKind) -> HeapGateRun {
    let mut heap = Heap::new(HeapConfig::paper_scaled().with_backend(backend));
    heap.set_parallel_tuning(ParallelTuning::force());
    let mut gc = G1Collector::new(GcConfig {
        gc_workers: workers,
        ..GcConfig::default()
    });
    gc.attach(&mut heap);
    let old = heap
        .spaces()
        .iter()
        .map(|s| s.id())
        .find(|&id| id != Heap::YOUNG_SPACE)
        .expect("collector old space");

    let mut alloc_ns = 0u64;
    let mut allocs = 0u64;

    // Stable old generation, identical to the GC gate's; the allocation
    // loop is timed (header + payload stores are the real backend's cost).
    let class = heap.classes_mut().intern("Stable");
    let keep = heap.roots_mut().create_slot("stable");
    let mut hub: Option<ObjectId> = None;
    for i in 0..w.stable_objects {
        let start = Instant::now();
        let id = heap
            .allocate(class, 2_048, SiteId::new(i % 7), old)
            .expect("stable allocation");
        alloc_ns += start.elapsed().as_nanos() as u64;
        allocs += 1;
        if i % 16 == 0 {
            heap.roots_mut().push(keep, id);
            if let Some(prev) = hub {
                heap.add_ref(prev, id).expect("hub chain");
            }
            hub = Some(id);
        } else {
            heap.add_ref(hub.expect("hub allocated first"), id)
                .expect("star edge");
        }
    }

    let churn_class = heap.classes_mut().intern("Churn");
    let waves = [
        heap.roots_mut().create_slot("wave-a"),
        heap.roots_mut().create_slot("wave-b"),
    ];
    let mut dumper = CriuDumper::new();
    let mut cycles = Vec::with_capacity(w.cycles);
    let mut snaps = Vec::with_capacity(w.cycles);
    let mut copied_bytes = 0u64;
    let mut collect_ns = 0u64;
    let mut copy_phase_ns = 0u64;
    let mut copy_critical_bytes = 0u64;
    for cycle in 0..w.cycles + 1 {
        heap.roots_mut().clear_slot(waves[cycle % 2]);
        for i in 0..w.churn_per_cycle {
            let start = Instant::now();
            let id = heap
                .allocate(
                    churn_class,
                    4_096,
                    SiteId::new(8 + i % 5),
                    Heap::YOUNG_SPACE,
                )
                .expect("churn allocation");
            alloc_ns += start.elapsed().as_nanos() as u64;
            allocs += 1;
            if i % 8 == 0 {
                heap.roots_mut().push(waves[cycle % 2], id);
            }
        }
        let before = heap.backend_stats();
        let start = Instant::now();
        let pauses = gc.collect(&mut heap, &SafepointRoots::none());
        let ns = start.elapsed().as_nanos() as u64;
        let after = heap.backend_stats();
        let snap = dumper
            .snapshot(&mut heap, SimTime::from_secs(cycle as u64))
            .expect("snapshot");
        if cycle > 0 {
            let work = pauses
                .iter()
                .fold(GcWork::default(), |acc, p| acc.merged(p.work));
            cycles.push((gc_heap_fingerprint(&heap), work));
            snaps.push(snap);
            copied_bytes += after.bytes_copied - before.bytes_copied;
            collect_ns += ns;
            copy_phase_ns += after.copy_phase_ns - before.copy_phase_ns;
            copy_critical_bytes += after.copy_critical_bytes - before.copy_critical_bytes;
        }
    }
    let tlab_refills = heap.backend_stats().tlab_refills;
    HeapGateRun {
        cycles,
        snaps,
        alloc_ns,
        allocs,
        copied_bytes,
        collect_ns,
        copy_phase_ns,
        copy_critical_bytes,
        tlab_refills,
    }
}

/// Fails the gate when a committed default-path bench JSON is missing,
/// carries an older schema version, or lacks a field the current gate
/// emits (`required` substrings): stale numbers alongside new code are
/// worse than no numbers.
fn check_committed_bench(path: &str, required: &[&str]) -> Result<(), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("{path}: not readable ({e}); regenerate with `perfgate`"))?;
    let tail = text
        .split("\"schema_version\":")
        .nth(1)
        .ok_or_else(|| format!("{path}: no schema_version field (pre-v{SCHEMA_VERSION} output)"))?;
    let version: u32 = tail
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .map_err(|_| format!("{path}: unparsable schema_version"))?;
    if version != SCHEMA_VERSION {
        return Err(format!(
            "{path}: schema_version {version} != gate version {SCHEMA_VERSION}; regenerate with `perfgate`"
        ));
    }
    for field in required {
        if !text.contains(field) {
            return Err(format!(
                "{path}: missing field \"{field}\" the current gate emits; regenerate with `perfgate`"
            ));
        }
    }
    Ok(())
}

fn main() {
    let mut quick = false;
    let mut min_speedup: Option<f64> = None;
    let mut min_pipeline_speedup: Option<f64> = None;
    let mut min_recorder_speedup = 3.0f64;
    let mut min_gc_speedup = 2.0f64;
    let mut min_heap_gbps = 0.05f64;
    let mut min_copy_scaling = 1.0f64;
    let mut out_path = String::from("BENCH_analyzer.json");
    let mut pipeline_out_path = String::from("BENCH_pipeline.json");
    let mut recorder_out_path = String::from("BENCH_recorder.json");
    let mut gc_out_path = String::from("BENCH_gc.json");
    let mut heap_out_path = String::from("BENCH_heap.json");
    let mut workers: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--workers" => {
                let v = args.next().expect("--workers needs a value");
                workers = Some(v.parse().expect("--workers needs a number"));
            }
            "--min-speedup" => {
                let v = args.next().expect("--min-speedup needs a value");
                min_speedup = Some(v.parse().expect("--min-speedup needs a number"));
            }
            "--min-pipeline-speedup" => {
                let v = args.next().expect("--min-pipeline-speedup needs a value");
                min_pipeline_speedup =
                    Some(v.parse().expect("--min-pipeline-speedup needs a number"));
            }
            "--min-recorder-speedup" => {
                let v = args.next().expect("--min-recorder-speedup needs a value");
                min_recorder_speedup = v.parse().expect("--min-recorder-speedup needs a number");
            }
            "--min-gc-speedup" => {
                let v = args.next().expect("--min-gc-speedup needs a value");
                min_gc_speedup = v.parse().expect("--min-gc-speedup needs a number");
            }
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--pipeline-out" => {
                pipeline_out_path = args.next().expect("--pipeline-out needs a path");
            }
            "--recorder-out" => {
                recorder_out_path = args.next().expect("--recorder-out needs a path");
            }
            "--gc-out" => gc_out_path = args.next().expect("--gc-out needs a path"),
            "--heap-out" => heap_out_path = args.next().expect("--heap-out needs a path"),
            "--min-heap-gbps" => {
                let v = args.next().expect("--min-heap-gbps needs a value");
                min_heap_gbps = v.parse().expect("--min-heap-gbps needs a number");
            }
            "--min-copy-scaling" => {
                let v = args.next().expect("--min-copy-scaling needs a value");
                min_copy_scaling = v.parse().expect("--min-copy-scaling needs a number");
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    let runs = if quick { 3 } else { 7 };
    let parallelism = workers.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get().min(8))
            .unwrap_or(4)
    });

    println!("perfgate: analyzer replay, {runs} runs/variant, parallel workers = {parallelism}");
    println!(
        "{:<8} {:>9} {:>5} | {:>14} {:>14} {:>14} | {:>8}",
        "size", "records", "snaps", "seq-probe", "seq-merge", "par-merge", "speedup"
    );

    let mut rows = Vec::new();
    let mut diverged = false;
    let mut large_speedup = 0.0f64;
    for w in WORKLOADS {
        let inputs = build_inputs(w);
        let (seq_ns, baseline) = measure(
            &inputs,
            &config(ReplayStrategy::HashProbe, 1),
            w.records,
            runs,
        );
        let (merge_ns, merge_out) = measure(
            &inputs,
            &config(ReplayStrategy::SortedMerge, 1),
            w.records,
            runs,
        );
        let (par_ns, par_out) = measure(
            &inputs,
            &config(ReplayStrategy::SortedMerge, parallelism),
            w.records,
            runs,
        );
        let identical = merge_out == baseline && par_out == baseline;
        if !identical {
            diverged = true;
            eprintln!(
                "FAIL: {} outputs diverge from the sequential baseline",
                w.name
            );
        }
        let speedup = seq_ns as f64 / par_ns.max(1) as f64;
        if w.name == "large" {
            large_speedup = speedup;
        }
        // The execution mode the "parallel" variant actually ran in: below
        // the record threshold the analyzer falls back to sequential.
        let parallel_mode =
            if config(ReplayStrategy::SortedMerge, parallelism).effective_workers(w.records) > 1 {
                "parallel"
            } else {
                "sequential-fallback"
            };
        println!(
            "{:<8} {:>9} {:>5} | {:>11} ns {:>11} ns {:>11} ns | {:>7.2}x ({parallel_mode})",
            w.name, w.records, w.snapshots, seq_ns, merge_ns, par_ns, speedup
        );
        rows.push(format!(
            concat!(
                "    {{\"name\": \"{}\", \"records\": {}, \"snapshots\": {}, ",
                "\"sequential_hashprobe_ns_per_record\": {}, ",
                "\"sequential_merge_ns_per_record\": {}, ",
                "\"parallel_merge_ns_per_record\": {}, ",
                "\"parallel_workers\": {}, ",
                "\"parallel_mode\": \"{}\", ",
                "\"speedup_parallel_merge_vs_seed\": {:.2}, ",
                "\"outputs_identical\": {}}}"
            ),
            json_escape(w.name),
            w.records,
            w.snapshots,
            seq_ns,
            merge_ns,
            par_ns,
            parallelism,
            parallel_mode,
            speedup,
            identical
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"analyzer_replay\",\n  \"schema_version\": {},\n  \"units\": \"median ns/record, {} runs\",\n  \"workloads\": [\n{}\n  ]\n}}\n",
        SCHEMA_VERSION,
        runs,
        rows.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write bench json");
    println!("wrote {out_path}");

    // ---- online pipeline gate -------------------------------------------
    println!();
    println!("perfgate: online GC+snapshot pipeline, median over timed cycles");
    println!(
        "{:<8} {:>8} {:>7} {:>6} | {:>14} {:>14} {:>14} | {:>8}",
        "size", "stable", "churn", "cycles", "seed-equiv", "fresh-trace", "reuse", "speedup"
    );
    let mut pipeline_rows = Vec::new();
    let mut large_pipeline_speedup = 0.0f64;
    for w in PIPELINE_WORKLOADS {
        let cycles = if quick { w.cycles.min(4) } else { w.cycles };
        let w = PipelineWorkload { cycles, ..*w };
        let (seed_samples, seed_snaps) = run_pipeline(&w, PipelineVariant::SeedEquivalent);
        let (fresh_samples, fresh_snaps) = run_pipeline(&w, PipelineVariant::FreshTrace);
        let (reuse_samples, reuse_snaps) = run_pipeline(&w, PipelineVariant::Reuse);

        let identical = seed_snaps.len() == reuse_snaps.len()
            && fresh_snaps.len() == reuse_snaps.len()
            && reuse_snaps.iter().enumerate().all(|(i, snap)| {
                snapshots_equal(snap, &seed_snaps[i]) && snapshots_equal(snap, &fresh_snaps[i])
            });
        if !identical {
            diverged = true;
            eprintln!(
                "FAIL: {} snapshot sequences diverge between pipeline variants",
                w.name
            );
        }
        let seed_ns = median(seed_samples);
        let fresh_ns = median(fresh_samples);
        let reuse_ns = median(reuse_samples);
        let speedup = seed_ns as f64 / reuse_ns.max(1) as f64;
        if w.name == "large" {
            large_pipeline_speedup = speedup;
        }
        println!(
            "{:<8} {:>8} {:>7} {:>6} | {:>11} ns {:>11} ns {:>11} ns | {:>7.2}x",
            w.name,
            w.stable_objects,
            w.churn_per_cycle,
            w.cycles,
            seed_ns,
            fresh_ns,
            reuse_ns,
            speedup
        );
        pipeline_rows.push(format!(
            concat!(
                "    {{\"name\": \"{}\", \"stable_objects\": {}, ",
                "\"churn_per_cycle\": {}, \"cycles\": {}, ",
                "\"seed_equivalent_ns_per_cycle\": {}, ",
                "\"fresh_trace_ns_per_cycle\": {}, ",
                "\"reuse_ns_per_cycle\": {}, ",
                "\"speedup_reuse_vs_seed\": {:.2}, ",
                "\"speedup_reuse_vs_fresh\": {:.2}, ",
                "\"outputs_identical\": {}}}"
            ),
            json_escape(w.name),
            w.stable_objects,
            w.churn_per_cycle,
            w.cycles,
            seed_ns,
            fresh_ns,
            reuse_ns,
            speedup,
            fresh_ns as f64 / reuse_ns.max(1) as f64,
            identical
        ));
    }
    let pipeline_json = format!(
        "{{\n  \"bench\": \"online_pipeline\",\n  \"schema_version\": {},\n  \"units\": \"median ns per GC+snapshot cycle\",\n  \"workloads\": [\n{}\n  ]\n}}\n",
        SCHEMA_VERSION,
        pipeline_rows.join(",\n")
    );
    std::fs::write(&pipeline_out_path, &pipeline_json).expect("write pipeline bench json");
    println!("wrote {pipeline_out_path}");

    // ---- recorder gate ---------------------------------------------------
    println!();
    println!("perfgate: allocation recorder, {runs} runs/variant, median ns/allocation");
    println!(
        "{:<8} {:>9} {:>6} | {:>14} {:>14} | {:>8}",
        "size", "allocs", "depth", "stack-walk", "trace-trie", "speedup"
    );
    let program = grid_loaded();
    let drain_every = AllocEventBuffer::DEFAULT_CAPACITY;
    let mut recorder_rows = Vec::new();
    let mut large_recorder_speedup = 0.0f64;
    for w in RECORDER_WORKLOADS {
        let tape = build_tape(w);
        // Warmup + timed runs per variant; the cold trie/memos are rebuilt
        // every run, so their construction cost is inside the measurement.
        let mut walk_samples = Vec::with_capacity(runs);
        let mut trie_samples = Vec::with_capacity(runs);
        let (_, mut walk_records) = run_recorder_stackwalk(&program, &tape, drain_every);
        let (_, mut trie_records) = run_recorder_trie(&program, &tape, drain_every);
        for _ in 0..runs {
            let (ns, r) = run_recorder_stackwalk(&program, &tape, drain_every);
            walk_samples.push(ns / w.allocs.max(1));
            walk_records = r;
            let (ns, r) = run_recorder_trie(&program, &tape, drain_every);
            trie_samples.push(ns / w.allocs.max(1));
            trie_records = r;
        }
        let identical = records_fingerprint(&walk_records) == records_fingerprint(&trie_records);
        if !identical {
            diverged = true;
            eprintln!("FAIL: {} recorder paths produced different records", w.name);
        }
        let walk_ns = median(walk_samples);
        let trie_ns = median(trie_samples);
        let speedup = walk_ns as f64 / trie_ns.max(1) as f64;
        if w.name == "large" {
            large_recorder_speedup = speedup;
        }
        println!(
            "{:<8} {:>9} {:>6} | {:>11} ns {:>11} ns | {:>7.2}x",
            w.name, w.allocs, w.mean_depth, walk_ns, trie_ns, speedup
        );
        recorder_rows.push(format!(
            concat!(
                "    {{\"name\": \"{}\", \"allocs\": {}, \"mean_depth\": {}, ",
                "\"stackwalk_ns_per_alloc\": {}, ",
                "\"trie_ns_per_alloc\": {}, ",
                "\"speedup_trie_vs_stackwalk\": {:.2}, ",
                "\"outputs_identical\": {}}}"
            ),
            json_escape(w.name),
            w.allocs,
            w.mean_depth,
            walk_ns,
            trie_ns,
            speedup,
            identical
        ));
    }
    // End-to-end cross-check on the real interpreter, both paths.
    let real_walk = run_real_session(RecorderPath::StackWalk);
    let real_trie = run_real_session(RecorderPath::TraceTrie);
    let real_identical = records_fingerprint(&real_walk) == records_fingerprint(&real_trie);
    if !real_identical {
        diverged = true;
        eprintln!("FAIL: real-runtime recorder paths produced different records");
    }
    println!(
        "real-runtime cross-check: {} records/path, identical = {real_identical}",
        real_walk.total_records()
    );
    let recorder_json = format!(
        concat!(
            "{{\n  \"bench\": \"allocation_recorder\",\n",
            "  \"schema_version\": {},\n",
            "  \"units\": \"median ns/allocation, {} runs\",\n",
            "  \"drain_every\": {},\n",
            "  \"real_runtime_outputs_identical\": {},\n",
            "  \"workloads\": [\n{}\n  ]\n}}\n"
        ),
        SCHEMA_VERSION,
        runs,
        drain_every,
        real_identical,
        recorder_rows.join(",\n")
    );
    std::fs::write(&recorder_out_path, &recorder_json).expect("write recorder bench json");
    println!("wrote {recorder_out_path}");

    // ---- GC mark+evacuate gate -------------------------------------------
    println!();
    println!("perfgate: GC mark+evacuate, median over timed cycles");
    println!(
        "{:<8} {:>8} {:>7} {:>6} | {:>13} {:>13} | {:>8} {:>9}",
        "size", "stable", "churn", "cycles", "seed-equiv", "engine-1w", "vs-seed", "4w/1w-mod"
    );
    let cost = GcConfig::default().cost;
    let mut gc_rows = Vec::new();
    let mut large_gc_speedup = 0.0f64;
    let mut gc_single_worker_ok = true;
    for w in GC_GATE_WORKLOADS {
        let cycles = if quick { w.cycles.min(4) } else { w.cycles };
        let w = GcGateWorkload { cycles, ..*w };
        let seed = run_gc_gate(&w, 1, true);
        let engine1 = run_gc_gate(&w, 1, false);
        let engine2 = run_gc_gate(&w, 2, false);
        let engine4 = run_gc_gate(&w, 4, false);

        let identical = [&engine1, &engine2, &engine4].iter().all(|run| {
            run.len() == seed.len()
                && run
                    .iter()
                    .zip(seed.iter())
                    .all(|(a, b)| a.fingerprint == b.fingerprint && a.work == b.work)
        });
        if !identical {
            diverged = true;
            eprintln!(
                "FAIL: {} heap trajectories diverge across GC worker counts",
                w.name
            );
        }

        let seed_ns = median(seed.iter().map(|c| c.wall_ns).collect());
        let engine1_ns = median(engine1.iter().map(|c| c.wall_ns).collect());
        let engine2_ns = median(engine2.iter().map(|c| c.wall_ns).collect());
        let engine4_ns = median(engine4.iter().map(|c| c.wall_ns).collect());
        let vs_seed = seed_ns as f64 / engine1_ns.max(1) as f64;
        // The single-CPU host cannot show wall-clock parallel gains; the
        // 4-vs-1 number is the cost model's Amdahl split over measured work.
        let pause1_us = median(
            engine1
                .iter()
                .map(|c| cost.pause_with_workers(&c.work, 1).as_micros())
                .collect(),
        );
        let pause4_us = median(
            engine1
                .iter()
                .map(|c| cost.pause_with_workers(&c.work, 4).as_micros())
                .collect(),
        );
        let modeled = pause1_us as f64 / pause4_us.max(1) as f64;
        if w.name == "large" {
            large_gc_speedup = modeled;
        }
        // The parallel claim/steal machinery must not tax the 1-worker path:
        // the engine must stay within 5% of the seed-equivalent serial cost.
        let single_ok = vs_seed >= 0.95;
        if !single_ok {
            gc_single_worker_ok = false;
            eprintln!(
                "FAIL: {} single-worker engine at {:.2}x of the serial baseline (floor 0.95x)",
                w.name, vs_seed
            );
        }
        println!(
            "{:<8} {:>8} {:>7} {:>6} | {:>10} ns {:>10} ns | {:>7.2}x {:>8.2}x",
            w.name,
            w.stable_objects,
            w.churn_per_cycle,
            w.cycles,
            seed_ns,
            engine1_ns,
            vs_seed,
            modeled
        );
        gc_rows.push(format!(
            concat!(
                "    {{\"name\": \"{}\", \"stable_objects\": {}, ",
                "\"churn_per_cycle\": {}, \"cycles\": {}, ",
                "\"seed_equivalent_ns_per_cycle\": {}, ",
                "\"engine_1w_ns_per_cycle\": {}, ",
                "\"engine_2w_ns_per_cycle\": {}, ",
                "\"engine_4w_ns_per_cycle\": {}, ",
                "\"speedup_engine_vs_seed\": {:.2}, ",
                "\"modeled_pause_1w_us\": {}, ",
                "\"modeled_pause_4w_us\": {}, ",
                "\"speedup_modeled_4w_vs_1w\": {:.2}, ",
                "\"single_worker_within_5pct_of_serial\": {}, ",
                "\"outputs_identical\": {}}}"
            ),
            json_escape(w.name),
            w.stable_objects,
            w.churn_per_cycle,
            w.cycles,
            seed_ns,
            engine1_ns,
            engine2_ns,
            engine4_ns,
            vs_seed,
            pause1_us,
            pause4_us,
            modeled,
            single_ok,
            identical
        ));
    }
    let gc_json = format!(
        "{{\n  \"bench\": \"gc_mark_evacuate\",\n  \"schema_version\": {},\n  \"units\": \"median ns per collection cycle; pauses in modeled us\",\n  \"workloads\": [\n{}\n  ]\n}}\n",
        SCHEMA_VERSION,
        gc_rows.join(",\n")
    );
    std::fs::write(&gc_out_path, &gc_json).expect("write gc bench json");
    println!("wrote {gc_out_path}");

    // ---- real-memory heap backend gate -----------------------------------
    println!();
    println!("perfgate: heap backend, real alloc + copy bandwidth, sim/real equality");
    println!(
        "{:<8} {:>6} | {:>11} {:>11} | {:>9} {:>9} {:>9} | {:>9}",
        "size", "cycles", "alloc-sim", "alloc-real", "copy-1w", "copy-2w", "copy-4w", "identical"
    );
    let mut heap_rows = Vec::new();
    let mut large_heap_gbps = 0.0f64;
    let mut large_copy_scaling = 0.0f64;
    for w in GC_GATE_WORKLOADS {
        let cycles = if quick { w.cycles.min(4) } else { w.cycles };
        let w = GcGateWorkload { cycles, ..*w };
        let sim = run_heap_gate(&w, 1, BackendKind::Sim);
        // Two more sim runs feed the alloc baseline only (the first run's
        // snapshots anchor the equality gate): the real alloc figure below
        // is the fastest of three repetitions, so the sim side must use
        // the same estimator or host noise in a single sim run skews the
        // real/sim ratio either way.
        let sim_alloc_reruns = [
            run_heap_gate(&w, 1, BackendKind::Sim),
            run_heap_gate(&w, 1, BackendKind::Sim),
        ];
        let real1 = run_heap_gate(&w, 1, BackendKind::Real);
        let real2 = run_heap_gate(&w, 2, BackendKind::Real);
        let real4 = run_heap_gate(&w, 4, BackendKind::Real);

        // The hard gate: identical trajectories (placement fingerprints +
        // GcWork) and identical streamed snapshot sequences, sim vs real at
        // every worker count. On the real backend the snapshot columns are
        // read back out of object headers, so this also proves every payload
        // store and memcpy landed where the logical layout says it did.
        let identical = [&real1, &real2, &real4].iter().all(|r| {
            r.cycles == sim.cycles
                && r.snaps.len() == sim.snaps.len()
                && r.snaps
                    .iter()
                    .zip(sim.snaps.iter())
                    .all(|(a, b)| snapshots_equal(a, b))
        });
        if !identical {
            diverged = true;
            eprintln!("FAIL: {} sim and real backends diverged", w.name);
        }
        if real1.copied_bytes == 0 || sim.copied_bytes != 0 {
            diverged = true;
            eprintln!(
                "FAIL: {} backend byte accounting wrong (real copied {} bytes, sim {})",
                w.name, real1.copied_bytes, sim.copied_bytes
            );
        }

        let alloc_sim_ns = [&sim, &sim_alloc_reruns[0], &sim_alloc_reruns[1]]
            .iter()
            .map(|r| r.alloc_ns / r.allocs.max(1))
            .min()
            .expect("three sim runs");
        // The allocation loop is identical across the three real runs (the
        // worker count only changes collection phases), so they are three
        // repetitions of one alloc benchmark; report the fastest, the
        // steady-state figure. The first run's arena is freshly prefaulted
        // and still pays one-time host-side page-materialization debt that
        // the recycled arenas of the later runs do not.
        let alloc_real_ns = [&real1, &real2, &real4]
            .iter()
            .map(|r| r.alloc_ns / r.allocs.max(1))
            .min()
            .expect("three real runs");
        // Phase-accurate copy bandwidth: bytes/ns == GB/s over the *copy
        // phase* wall-clock only. The serial per-byte cost is measured at
        // one worker — the only clean measurement a single-CPU host can
        // make, since a scoped-thread copy phase there pays per-batch
        // spawn and timeslice overhead a multi-core host would not. The
        // multi-worker figures apply the partition-balance split
        // `copied / critical` (each phase's largest destination-region
        // shard is the critical path) to that measured serial rate — the
        // same measured-work/modeled-split convention as the GC arm's
        // pauses. At one worker critical == copied, so the figure is the
        // plain measured phase bandwidth; the raw multi-worker phase
        // wall-clocks still land in the JSON row unmodeled.
        let serial_gbps = real1.copied_bytes as f64 / real1.copy_phase_ns.max(1) as f64;
        let gbps = |r: &HeapGateRun| {
            serial_gbps * (r.copied_bytes as f64 / r.copy_critical_bytes.max(1) as f64)
        };
        let (g1, g2, g4) = (gbps(&real1), gbps(&real2), gbps(&real4));
        let copy_scaling = g4 / g1.max(f64::MIN_POSITIVE);
        if w.name == "large" {
            large_heap_gbps = g1.max(g2).max(g4);
            large_copy_scaling = copy_scaling;
        }
        println!(
            "{:<8} {:>6} | {:>8} ns {:>8} ns | {:>9.2} {:>9.2} {:>9.2} | {:>9}",
            w.name, w.cycles, alloc_sim_ns, alloc_real_ns, g1, g2, g4, identical
        );
        heap_rows.push(format!(
            concat!(
                "    {{\"name\": \"{}\", \"cycles\": {}, ",
                "\"alloc_ns_per_object_sim\": {}, ",
                "\"alloc_ns_per_object_real\": {}, ",
                "\"alloc_real_over_sim\": {:.2}, ",
                "\"tlab_refills\": {}, ",
                "\"real_copied_bytes_per_run\": {}, ",
                "\"copy_phase_ns_1w\": {}, ",
                "\"copy_phase_ns_2w\": {}, ",
                "\"copy_phase_ns_4w\": {}, ",
                "\"copy_gbps_1w\": {:.3}, ",
                "\"copy_gbps_2w\": {:.3}, ",
                "\"copy_gbps_4w\": {:.3}, ",
                "\"copy_gbps_wallclock_1w\": {:.3}, ",
                "\"copy_scaling_4w_over_1w\": {:.2}, ",
                "\"outputs_identical\": {}}}"
            ),
            json_escape(w.name),
            w.cycles,
            alloc_sim_ns,
            alloc_real_ns,
            alloc_real_ns as f64 / alloc_sim_ns.max(1) as f64,
            real1.tlab_refills,
            real1.copied_bytes,
            real1.copy_phase_ns,
            real2.copy_phase_ns,
            real4.copy_phase_ns,
            g1,
            g2,
            g4,
            // PR 8's convention — payload bytes over *collection* wall-clock
            // — kept in the row so the phase-accurate figure's gain over it
            // stays visible (collection wall-clock also pays mark, planning,
            // and fix-up).
            real1.copied_bytes as f64 / real1.collect_ns.max(1) as f64,
            copy_scaling,
            identical
        ));
    }
    let heap_json = format!(
        concat!(
            "{{\n  \"bench\": \"heap_backend\",\n",
            "  \"schema_version\": {},\n",
            "  \"units\": \"alloc in ns/object; copy bandwidth in GB/s of payload memcpy over copy-phase wall-clock, measured at 1 worker and scaled by the partition-balance split at >1 worker\",\n",
            "  \"workloads\": [\n{}\n  ]\n}}\n"
        ),
        SCHEMA_VERSION,
        heap_rows.join(",\n")
    );
    std::fs::write(&heap_out_path, &heap_json).expect("write heap bench json");
    println!("wrote {heap_out_path}");

    if diverged {
        std::process::exit(1);
    }
    if let Some(min) = min_speedup {
        if large_speedup < min {
            eprintln!("FAIL: large-workload speedup {large_speedup:.2}x below required {min:.2}x");
            std::process::exit(1);
        }
        println!("speedup gate passed: {large_speedup:.2}x >= {min:.2}x");
    }
    if let Some(min) = min_pipeline_speedup {
        if large_pipeline_speedup < min {
            eprintln!(
                "FAIL: large-workload pipeline speedup {large_pipeline_speedup:.2}x below required {min:.2}x"
            );
            std::process::exit(1);
        }
        println!("pipeline speedup gate passed: {large_pipeline_speedup:.2}x >= {min:.2}x");
    }
    if large_recorder_speedup < min_recorder_speedup {
        eprintln!(
            "FAIL: large-workload recorder speedup {large_recorder_speedup:.2}x below required {min_recorder_speedup:.2}x"
        );
        std::process::exit(1);
    }
    println!(
        "recorder speedup gate passed: {large_recorder_speedup:.2}x >= {min_recorder_speedup:.2}x"
    );
    if large_gc_speedup < min_gc_speedup {
        eprintln!(
            "FAIL: large-workload modeled 4-worker GC speedup {large_gc_speedup:.2}x below required {min_gc_speedup:.2}x"
        );
        std::process::exit(1);
    }
    println!("gc speedup gate passed: {large_gc_speedup:.2}x >= {min_gc_speedup:.2}x");
    if !gc_single_worker_ok {
        eprintln!("FAIL: single-worker GC throughput fell below 95% of the serial baseline");
        std::process::exit(1);
    }
    println!("gc single-worker throughput gate passed");
    if large_heap_gbps < min_heap_gbps {
        eprintln!(
            "FAIL: large-workload real copy bandwidth {large_heap_gbps:.3} GB/s below required {min_heap_gbps:.3} GB/s"
        );
        std::process::exit(1);
    }
    println!(
        "heap copy-bandwidth gate passed: {large_heap_gbps:.3} GB/s >= {min_heap_gbps:.3} GB/s"
    );
    if large_copy_scaling < min_copy_scaling {
        eprintln!(
            "FAIL: large-workload copy scaling (4w/1w) {large_copy_scaling:.2}x below required {min_copy_scaling:.2}x"
        );
        std::process::exit(1);
    }
    println!("heap copy-scaling gate passed: {large_copy_scaling:.2}x >= {min_copy_scaling:.2}x");

    // ---- committed-results staleness check -------------------------------
    // Checked at the default paths regardless of --out overrides: CI runs
    // write throwaway files but the repo's committed numbers must match the
    // gate's schema.
    let mut stale = false;
    for (path, required) in [
        ("BENCH_analyzer.json", &[][..]),
        ("BENCH_pipeline.json", &[]),
        ("BENCH_recorder.json", &[]),
        ("BENCH_gc.json", &[]),
        (
            "BENCH_heap.json",
            &[
                "copy_phase_ns_1w",
                "copy_gbps_4w",
                "copy_gbps_wallclock_1w",
                "copy_scaling_4w_over_1w",
                "tlab_refills",
                "alloc_real_over_sim",
            ],
        ),
    ] {
        if let Err(reason) = check_committed_bench(path, required) {
            eprintln!("FAIL: stale committed bench results — {reason}");
            stale = true;
        }
    }
    if stale {
        std::process::exit(1);
    }
    println!("committed bench results are at schema version {SCHEMA_VERSION}");
}
