//! Perf gates for the two optimized paths: Analyzer replay and the online
//! GC+snapshot pipeline.
//!
//! **Analyzer gate** — times the seed implementation (sequential hash-probe
//! replay) against the columnar merge replay, sequential and parallel, on
//! three synthetic workload sizes, verifies all variants produce identical
//! [`AnalysisOutcome`]s, and writes the medians to `BENCH_analyzer.json`.
//!
//! **Pipeline gate** — times full GC+snapshot cycles on a churn workload
//! (a large stable old generation plus a young garbage wave per cycle)
//! three ways: a seed-equivalent emulation (fresh hash-set trace plus
//! hash-set no-need walk per snapshot, the pre-slab online path), the
//! optimized path with snapshot live-set reuse disabled (fresh epoch-mark
//! trace per snapshot), and the full zero-retrace path. All three runs
//! drive bit-identical heap trajectories; the produced snapshot sequences
//! are compared field by field. Medians land in `BENCH_pipeline.json`.
//!
//! ```text
//! perfgate [--quick] [--workers <n>] [--min-speedup <x>]
//!          [--min-pipeline-speedup <x>] [--out <path>] [--pipeline-out <path>]
//! ```
//!
//! * `--quick` — fewer timed runs/cycles (CI smoke; equality gates still run).
//! * `--workers <n>` — worker count for the parallel replay variant
//!   (default: `available_parallelism` capped at 8).
//! * `--min-speedup <x>` — exit non-zero unless parallel merge replay beats
//!   the hash-probe baseline by `x` on the largest workload.
//! * `--min-pipeline-speedup <x>` — exit non-zero unless the zero-retrace
//!   cycle beats the seed-equivalent cycle by `x` on the largest workload.
//! * `--out <path>` — analyzer JSON path (default `BENCH_analyzer.json`).
//! * `--pipeline-out <path>` — pipeline JSON path (default
//!   `BENCH_pipeline.json`).
//!
//! Exits non-zero if any variant's outputs differ from its baseline.

use std::collections::{HashSet, VecDeque};
use std::time::Instant;

use polm2_core::{AllocationRecords, AnalysisOutcome, Analyzer, AnalyzerConfig, ReplayStrategy};
use polm2_gc::{Collector, G1Collector, GcConfig, SafepointRoots};
use polm2_heap::{
    BuildIdHasher, Heap, HeapConfig, IdHashMap, IdHashSet, IdentityHash, ObjectId, RegionId, SiteId,
};
use polm2_metrics::{SimDuration, SimTime};
use polm2_runtime::{
    ClassDef, Instr, LoadedProgram, Loader, MethodDef, Program, SizeSpec, TraceFrame,
};
use polm2_snapshot::{CriuDumper, DumperOptions, HeapDumper, Snapshot, SnapshotSeries};

struct Workload {
    name: &'static str,
    records: u64,
    snapshots: u32,
}

const WORKLOADS: &[Workload] = &[
    Workload {
        name: "small",
        records: 10_000,
        snapshots: 8,
    },
    Workload {
        name: "medium",
        records: 50_000,
        snapshots: 16,
    },
    Workload {
        name: "large",
        records: 120_000,
        snapshots: 32,
    },
];

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Builds a deterministic synthetic profiling run: `records` allocations
/// spread over a few hundred distinct traces, `snapshots` heap snapshots
/// with per-trace lifespan bias so survival histograms are non-trivial.
fn build_inputs(w: &Workload) -> (AllocationRecords, SnapshotSeries, LoadedProgram) {
    let mut rng = 0x5eed_0000_0000_0001u64 ^ (w.records << 8) ^ u64::from(w.snapshots);
    const CLASSES: usize = 32;
    const METHODS: usize = 8;
    let mut program = Program::new();
    for c in 0..CLASSES {
        let mut class = ClassDef::new(format!("Class{c}"));
        for m in 0..METHODS {
            class = class.with_method(MethodDef::new(format!("method{m}")).push(Instr::alloc(
                "Obj",
                SizeSpec::Fixed(32),
                1,
            )));
        }
        program.add_class(class);
    }
    let mut heap = Heap::new(HeapConfig::small());
    let loaded = Loader::load(program, &mut [], &mut heap).expect("load");

    let traces: Vec<Vec<TraceFrame>> = (0..512)
        .map(|_| {
            let depth = 1 + (xorshift(&mut rng) % 5) as usize;
            (0..depth)
                .map(|_| TraceFrame {
                    class_idx: (xorshift(&mut rng) % CLASSES as u64) as u16,
                    method_idx: (xorshift(&mut rng) % METHODS as u64) as u16,
                    line: 1 + (xorshift(&mut rng) % 60) as u32,
                })
                .collect()
        })
        .collect();
    let biases: Vec<u64> = (0..traces.len())
        .map(|_| xorshift(&mut rng) % (u64::from(w.snapshots) + 1))
        .collect();

    let mut records = AllocationRecords::default();
    let mut live: Vec<Vec<IdentityHash>> = vec![Vec::new(); w.snapshots as usize];
    for object in 0..w.records {
        let t = (xorshift(&mut rng) % traces.len() as u64) as usize;
        let hash = IdentityHash::of(ObjectId::new(object + 1));
        records.record(&traces[t], hash);
        let jitter = xorshift(&mut rng) % 4;
        let lifespan = (biases[t] + jitter).min(u64::from(w.snapshots));
        for snap in live.iter_mut().take(lifespan as usize) {
            snap.push(hash);
        }
    }
    let series: SnapshotSeries = live
        .into_iter()
        .enumerate()
        .map(|(seq, hashes)| {
            Snapshot::new(
                seq as u32,
                SimTime::from_secs(seq as u64),
                hashes.iter().copied().collect(),
                4096,
                SimDuration::from_millis(1),
            )
        })
        .collect();
    (records, series, loaded)
}

fn config(replay: ReplayStrategy, parallelism: usize) -> AnalyzerConfig {
    AnalyzerConfig {
        replay,
        parallelism,
        min_survivals: 1,
        ..AnalyzerConfig::default()
    }
}

/// Median ns/record over `runs` timed runs (after one warmup), plus the
/// outcome of the last run for the equality gate.
fn measure(
    inputs: &(AllocationRecords, SnapshotSeries, LoadedProgram),
    cfg: &AnalyzerConfig,
    records: u64,
    runs: usize,
) -> (u64, AnalysisOutcome) {
    let analyzer = Analyzer::new(*cfg);
    let mut outcome = analyzer.analyze(&inputs.0, &inputs.1, &inputs.2); // warmup
    let mut samples: Vec<u64> = Vec::with_capacity(runs);
    for _ in 0..runs {
        let start = Instant::now();
        outcome = analyzer.analyze(&inputs.0, &inputs.1, &inputs.2);
        samples.push(start.elapsed().as_nanos() as u64 / records.max(1));
    }
    samples.sort_unstable();
    (samples[samples.len() / 2], outcome)
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

// ---------------------------------------------------------------------------
// Online pipeline gate
// ---------------------------------------------------------------------------

struct PipelineWorkload {
    name: &'static str,
    /// Rooted old-generation objects, all live for the whole run.
    stable_objects: u32,
    /// Unrooted young allocations per cycle, all dead by the next GC.
    churn_per_cycle: u32,
    /// Timed GC+snapshot cycles (one extra warmup cycle is untimed).
    cycles: usize,
}

const PIPELINE_WORKLOADS: &[PipelineWorkload] = &[
    PipelineWorkload {
        name: "small",
        stable_objects: 4_000,
        churn_per_cycle: 500,
        cycles: 6,
    },
    PipelineWorkload {
        name: "large",
        stable_objects: 30_000,
        churn_per_cycle: 3_000,
        cycles: 10,
    },
];

#[derive(Clone, Copy, PartialEq, Eq)]
enum PipelineVariant {
    /// Timed: GC + the seed's snapshot path, emulated (see
    /// [`seed_snapshot_cost`]). The real dumper advances heap state untimed.
    SeedEquivalent,
    /// Timed: GC + real snapshot with live-set reuse disabled (fresh
    /// epoch-mark trace per snapshot).
    FreshTrace,
    /// Timed: GC + real snapshot reusing the collector's published live set.
    Reuse,
}

/// The seed's object table, mirrored: the pre-slab heap kept every record
/// behind an `IdHashMap` probe. Rebuilt (untimed) after each GC so the timed
/// emulation runs the seed's algorithms over the seed's data layout.
struct SeedRecord {
    size: u32,
    region: RegionId,
    first_page: u32,
    last_page: u32,
    hash: IdentityHash,
    refs: Vec<ObjectId>,
}

fn build_seed_mirror(heap: &Heap) -> IdHashMap<ObjectId, SeedRecord> {
    let mut mirror: IdHashMap<ObjectId, SeedRecord> = IdHashMap::default();
    for space in heap.spaces() {
        for id in heap.objects_in_space(space.id()).expect("space exists") {
            let rec = heap.object(id).expect("listed object exists");
            let (first_page, last_page) = heap.page_table().pages_of(rec.addr(), rec.size());
            mirror.insert(
                id,
                SeedRecord {
                    size: rec.size(),
                    region: rec.addr().region,
                    first_page,
                    last_page,
                    hash: rec.identity_hash(),
                    refs: rec.refs().to_vec(),
                },
            );
        }
    }
    mirror
}

/// The seed's per-snapshot work, transcribed from the pre-optimization
/// sources: `mark_live` (BFS with a fresh visited hash-set, a hash-map probe
/// per edge, and hash-map region accounting), the Dumper's hash collection
/// (no pre-sizing), `mark_no_need_pages` (live pages accumulated into a
/// `HashSet`, then a per-page `contains` sweep over every assigned region),
/// the captured-page count, and `Snapshot::new`'s eager column sort.
///
/// Runs against the mirror, read-only; returns a checksum so the optimizer
/// cannot discard the work.
fn seed_snapshot_cost(heap: &Heap, mirror: &IdHashMap<ObjectId, SeedRecord>) -> u64 {
    // -- seed mark_live --
    let mut queue: VecDeque<ObjectId> = VecDeque::new();
    let mut order: Vec<ObjectId> = Vec::new();
    let mut live: IdHashSet<ObjectId> = IdHashSet::default();
    let mut live_bytes: u64 = 0;
    let mut region_live: IdHashMap<RegionId, u32> = IdHashMap::default();
    for id in heap.roots().iter() {
        if let Some(rec) = mirror.get(&id) {
            if live.insert(id) {
                order.push(id);
                live_bytes += u64::from(rec.size);
                *region_live.entry(rec.region).or_insert(0) += rec.size;
                queue.push_back(id);
            }
        }
    }
    let mut scratch: Vec<ObjectId> = Vec::new();
    while let Some(id) = queue.pop_front() {
        let rec = mirror.get(&id).expect("queued objects are live");
        scratch.clear();
        scratch.extend_from_slice(&rec.refs);
        for &child in &scratch {
            if let Some(child_rec) = mirror.get(&child) {
                if live.insert(child) {
                    order.push(child);
                    live_bytes += u64::from(child_rec.size);
                    *region_live.entry(child_rec.region).or_insert(0) += child_rec.size;
                    queue.push_back(child);
                }
            }
        }
    }
    // -- seed Dumper hash collection --
    let hashes: IdHashSet<IdentityHash> = live
        .iter()
        .filter_map(|id| mirror.get(id).map(|r| r.hash))
        .collect();
    // -- seed mark_no_need_pages --
    let mut live_pages: HashSet<u32, BuildIdHasher> = Default::default();
    for id in live.iter() {
        if let Some(rec) = mirror.get(id) {
            for p in rec.first_page..=rec.last_page {
                live_pages.insert(p);
            }
        }
    }
    let mut no_need = vec![false; heap.page_table().page_count() as usize];
    let mut marked = 0u64;
    for region in heap.regions() {
        if region.space().is_none() {
            continue;
        }
        let first = region.first_page().raw();
        for p in first..first + heap.config().pages_per_region() {
            let should = !live_pages.contains(&p);
            if should {
                marked += 1;
            }
            no_need[p as usize] = should;
        }
    }
    // -- seed captured-page count --
    let mut captured = 0u64;
    for (page, flags) in heap.page_table().iter().enumerate() {
        if flags.dirty && !no_need[page] {
            captured += 1;
        }
    }
    // -- seed Snapshot::new: eager sorted column --
    let mut sorted: Vec<u64> = hashes.iter().map(|h| u64::from(h.raw())).collect();
    sorted.sort_unstable();
    live_bytes.rotate_left(17)
        ^ order.len() as u64
        ^ region_live.len() as u64
        ^ marked.rotate_left(7)
        ^ captured
        ^ sorted.last().copied().unwrap_or(0)
}

/// One full pipeline run: identical heap trajectory for every variant, so
/// the snapshot sequences must come out bit-identical. Returns the per-cycle
/// timings (warmup excluded) and the snapshots for the equality gate.
fn run_pipeline(w: &PipelineWorkload, variant: PipelineVariant) -> (Vec<u64>, Vec<Snapshot>) {
    let mut heap = Heap::new(HeapConfig::paper_scaled());
    let mut gc = G1Collector::new(GcConfig::default());
    gc.attach(&mut heap);
    let old = heap
        .spaces()
        .iter()
        .map(|s| s.id())
        .find(|&id| id != Heap::YOUNG_SPACE)
        .expect("collector old space");

    // Stable old generation: star groups of 16 hanging off rooted hubs,
    // hubs chained together — the trace does real pointer chasing.
    let class = heap.classes_mut().intern("Stable");
    let keep = heap.roots_mut().create_slot("stable");
    let mut hub: Option<ObjectId> = None;
    for i in 0..w.stable_objects {
        let id = heap
            .allocate(class, 2_048, SiteId::new(i % 7), old)
            .expect("stable allocation");
        if i % 16 == 0 {
            heap.roots_mut().push(keep, id);
            if let Some(prev) = hub {
                heap.add_ref(prev, id).expect("hub chain");
            }
            hub = Some(id);
        } else {
            heap.add_ref(hub.expect("hub allocated first"), id)
                .expect("star edge");
        }
    }

    let churn_class = heap.classes_mut().intern("Churn");
    let mut dumper = CriuDumper::with_options(DumperOptions {
        reuse_live_set: variant == PipelineVariant::Reuse,
        ..DumperOptions::default()
    });
    let mut samples = Vec::with_capacity(w.cycles);
    let mut snaps = Vec::with_capacity(w.cycles);
    let mut sink = 0u64;
    for cycle in 0..w.cycles + 1 {
        for i in 0..w.churn_per_cycle {
            heap.allocate(
                churn_class,
                4_096,
                SiteId::new(8 + i % 5),
                Heap::YOUNG_SPACE,
            )
            .expect("churn allocation");
        }
        let (elapsed, snap) = match variant {
            PipelineVariant::SeedEquivalent => {
                let start = Instant::now();
                gc.collect(&mut heap, &SafepointRoots::none());
                let gc_time = start.elapsed();
                // The mirror rebuild stands in for the bookkeeping the seed
                // heap did throughout the cycle; it is not timed.
                let mirror = build_seed_mirror(&heap);
                let start = Instant::now();
                sink ^= seed_snapshot_cost(&heap, &mirror);
                let snap_time = start.elapsed();
                // Advance dirty/no-need state exactly like the other runs,
                // outside the timed window.
                let snap = dumper
                    .snapshot(&mut heap, SimTime::from_secs(cycle as u64))
                    .expect("snapshot");
                (gc_time + snap_time, snap)
            }
            PipelineVariant::FreshTrace | PipelineVariant::Reuse => {
                let start = Instant::now();
                gc.collect(&mut heap, &SafepointRoots::none());
                if variant == PipelineVariant::Reuse {
                    assert!(
                        heap.has_current_published_live(),
                        "the collector must have published a reusable live set"
                    );
                }
                let snap = dumper
                    .snapshot(&mut heap, SimTime::from_secs(cycle as u64))
                    .expect("snapshot");
                (start.elapsed(), snap)
            }
        };
        if cycle > 0 {
            samples.push(elapsed.as_nanos() as u64);
            snaps.push(snap);
        }
    }
    std::hint::black_box(sink);
    (samples, snaps)
}

fn median(mut samples: Vec<u64>) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn snapshots_equal(a: &Snapshot, b: &Snapshot) -> bool {
    a.seq == b.seq
        && a.at == b.at
        && a.live_objects == b.live_objects
        && a.size_bytes == b.size_bytes
        && a.capture_time == b.capture_time
        && a.sorted_hashes() == b.sorted_hashes()
}

fn main() {
    let mut quick = false;
    let mut min_speedup: Option<f64> = None;
    let mut min_pipeline_speedup: Option<f64> = None;
    let mut out_path = String::from("BENCH_analyzer.json");
    let mut pipeline_out_path = String::from("BENCH_pipeline.json");
    let mut workers: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--workers" => {
                let v = args.next().expect("--workers needs a value");
                workers = Some(v.parse().expect("--workers needs a number"));
            }
            "--min-speedup" => {
                let v = args.next().expect("--min-speedup needs a value");
                min_speedup = Some(v.parse().expect("--min-speedup needs a number"));
            }
            "--min-pipeline-speedup" => {
                let v = args.next().expect("--min-pipeline-speedup needs a value");
                min_pipeline_speedup =
                    Some(v.parse().expect("--min-pipeline-speedup needs a number"));
            }
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--pipeline-out" => {
                pipeline_out_path = args.next().expect("--pipeline-out needs a path");
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    let runs = if quick { 3 } else { 7 };
    let parallelism = workers.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get().min(8))
            .unwrap_or(4)
    });

    println!("perfgate: analyzer replay, {runs} runs/variant, parallel workers = {parallelism}");
    println!(
        "{:<8} {:>9} {:>5} | {:>14} {:>14} {:>14} | {:>8}",
        "size", "records", "snaps", "seq-probe", "seq-merge", "par-merge", "speedup"
    );

    let mut rows = Vec::new();
    let mut diverged = false;
    let mut large_speedup = 0.0f64;
    for w in WORKLOADS {
        let inputs = build_inputs(w);
        let (seq_ns, baseline) = measure(
            &inputs,
            &config(ReplayStrategy::HashProbe, 1),
            w.records,
            runs,
        );
        let (merge_ns, merge_out) = measure(
            &inputs,
            &config(ReplayStrategy::SortedMerge, 1),
            w.records,
            runs,
        );
        let (par_ns, par_out) = measure(
            &inputs,
            &config(ReplayStrategy::SortedMerge, parallelism),
            w.records,
            runs,
        );
        let identical = merge_out == baseline && par_out == baseline;
        if !identical {
            diverged = true;
            eprintln!(
                "FAIL: {} outputs diverge from the sequential baseline",
                w.name
            );
        }
        let speedup = seq_ns as f64 / par_ns.max(1) as f64;
        if w.name == "large" {
            large_speedup = speedup;
        }
        println!(
            "{:<8} {:>9} {:>5} | {:>11} ns {:>11} ns {:>11} ns | {:>7.2}x",
            w.name, w.records, w.snapshots, seq_ns, merge_ns, par_ns, speedup
        );
        rows.push(format!(
            concat!(
                "    {{\"name\": \"{}\", \"records\": {}, \"snapshots\": {}, ",
                "\"sequential_hashprobe_ns_per_record\": {}, ",
                "\"sequential_merge_ns_per_record\": {}, ",
                "\"parallel_merge_ns_per_record\": {}, ",
                "\"parallel_workers\": {}, ",
                "\"speedup_parallel_merge_vs_seed\": {:.2}, ",
                "\"outputs_identical\": {}}}"
            ),
            json_escape(w.name),
            w.records,
            w.snapshots,
            seq_ns,
            merge_ns,
            par_ns,
            parallelism,
            speedup,
            identical
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"analyzer_replay\",\n  \"units\": \"median ns/record, {} runs\",\n  \"workloads\": [\n{}\n  ]\n}}\n",
        runs,
        rows.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write bench json");
    println!("wrote {out_path}");

    // ---- online pipeline gate -------------------------------------------
    println!();
    println!("perfgate: online GC+snapshot pipeline, median over timed cycles");
    println!(
        "{:<8} {:>8} {:>7} {:>6} | {:>14} {:>14} {:>14} | {:>8}",
        "size", "stable", "churn", "cycles", "seed-equiv", "fresh-trace", "reuse", "speedup"
    );
    let mut pipeline_rows = Vec::new();
    let mut large_pipeline_speedup = 0.0f64;
    for w in PIPELINE_WORKLOADS {
        let cycles = if quick { w.cycles.min(4) } else { w.cycles };
        let w = PipelineWorkload { cycles, ..*w };
        let (seed_samples, seed_snaps) = run_pipeline(&w, PipelineVariant::SeedEquivalent);
        let (fresh_samples, fresh_snaps) = run_pipeline(&w, PipelineVariant::FreshTrace);
        let (reuse_samples, reuse_snaps) = run_pipeline(&w, PipelineVariant::Reuse);

        let identical = seed_snaps.len() == reuse_snaps.len()
            && fresh_snaps.len() == reuse_snaps.len()
            && reuse_snaps.iter().enumerate().all(|(i, snap)| {
                snapshots_equal(snap, &seed_snaps[i]) && snapshots_equal(snap, &fresh_snaps[i])
            });
        if !identical {
            diverged = true;
            eprintln!(
                "FAIL: {} snapshot sequences diverge between pipeline variants",
                w.name
            );
        }
        let seed_ns = median(seed_samples);
        let fresh_ns = median(fresh_samples);
        let reuse_ns = median(reuse_samples);
        let speedup = seed_ns as f64 / reuse_ns.max(1) as f64;
        if w.name == "large" {
            large_pipeline_speedup = speedup;
        }
        println!(
            "{:<8} {:>8} {:>7} {:>6} | {:>11} ns {:>11} ns {:>11} ns | {:>7.2}x",
            w.name,
            w.stable_objects,
            w.churn_per_cycle,
            w.cycles,
            seed_ns,
            fresh_ns,
            reuse_ns,
            speedup
        );
        pipeline_rows.push(format!(
            concat!(
                "    {{\"name\": \"{}\", \"stable_objects\": {}, ",
                "\"churn_per_cycle\": {}, \"cycles\": {}, ",
                "\"seed_equivalent_ns_per_cycle\": {}, ",
                "\"fresh_trace_ns_per_cycle\": {}, ",
                "\"reuse_ns_per_cycle\": {}, ",
                "\"speedup_reuse_vs_seed\": {:.2}, ",
                "\"speedup_reuse_vs_fresh\": {:.2}, ",
                "\"outputs_identical\": {}}}"
            ),
            json_escape(w.name),
            w.stable_objects,
            w.churn_per_cycle,
            w.cycles,
            seed_ns,
            fresh_ns,
            reuse_ns,
            speedup,
            fresh_ns as f64 / reuse_ns.max(1) as f64,
            identical
        ));
    }
    let pipeline_json = format!(
        "{{\n  \"bench\": \"online_pipeline\",\n  \"units\": \"median ns per GC+snapshot cycle\",\n  \"workloads\": [\n{}\n  ]\n}}\n",
        pipeline_rows.join(",\n")
    );
    std::fs::write(&pipeline_out_path, &pipeline_json).expect("write pipeline bench json");
    println!("wrote {pipeline_out_path}");

    if diverged {
        std::process::exit(1);
    }
    if let Some(min) = min_speedup {
        if large_speedup < min {
            eprintln!("FAIL: large-workload speedup {large_speedup:.2}x below required {min:.2}x");
            std::process::exit(1);
        }
        println!("speedup gate passed: {large_speedup:.2}x >= {min:.2}x");
    }
    if let Some(min) = min_pipeline_speedup {
        if large_pipeline_speedup < min {
            eprintln!(
                "FAIL: large-workload pipeline speedup {large_pipeline_speedup:.2}x below required {min:.2}x"
            );
            std::process::exit(1);
        }
        println!("pipeline speedup gate passed: {large_pipeline_speedup:.2}x >= {min:.2}x");
    }
}
