//! Regenerates Figures 3 and 4: memory-snapshot time and size with the
//! Dumper, normalized to jmap (first 20 snapshots per workload), plus the
//! §5.3.2 absolute numbers.
//!
//! Usage: `cargo run --release -p polm2-bench --bin fig3_4 [-- --quick]`

use polm2_bench::{fig3_4_snapshots, EvalOptions};
use polm2_metrics::report::{bytes, TextTable};

fn main() {
    let opts = EvalOptions::from_args();
    eprintln!("[fig3_4] {}", opts.label());
    let comparisons = fig3_4_snapshots(&opts, 20);

    let mut table = TextTable::new(vec![
        "Workload".into(),
        "Dumper time/jmap (Fig 3)".into(),
        "Dumper size/jmap (Fig 4)".into(),
        "Dumper mean size".into(),
        "jmap mean size".into(),
        "Dumper total stop".into(),
        "jmap total stop".into(),
        "snapshots".into(),
    ]);
    for c in &comparisons {
        table.add_row(vec![
            c.workload.into(),
            format!("{:.4}", c.time_ratio()),
            format!("{:.4}", c.size_ratio()),
            bytes(c.criu.mean_size_bytes()),
            bytes(c.jmap.mean_size_bytes()),
            c.criu.total_capture_time().to_string(),
            c.jmap.total_capture_time().to_string(),
            c.criu.len().to_string(),
        ]);
    }
    println!("Figures 3-4: Memory Snapshot Time and Size, Dumper normalized to jmap");
    println!("{}", table.render());
    println!("(paper: time reduced by more than 90% — ratio < 0.10; size by ~60% — ratio ~0.4)");

    // The per-snapshot series the figures plot.
    for c in &comparisons {
        println!("\n{} per-snapshot ratios (time, size):", c.workload);
        for (criu, jmap) in c.criu.snapshots().iter().zip(c.jmap.snapshots()) {
            println!(
                "  snap {:>2}: time {:.4}  size {:.4}",
                criu.seq,
                criu.capture_time.as_micros() as f64 / jmap.capture_time.as_micros().max(1) as f64,
                criu.size_bytes as f64 / jmap.size_bytes.max(1) as f64,
            );
        }
    }
}
