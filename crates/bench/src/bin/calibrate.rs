//! Calibration helper: times the harness phases per workload (host wall
//! clock) and prints headline pause/throughput numbers at quick scale.
//!
//! Usage: `cargo run --release -p polm2-bench --bin calibrate [-- <workload>]`

use std::time::Instant;

use polm2_bench::EvalOptions;
use polm2_workloads::{paper_workloads, profile_workload, run_workload, CollectorSetup, Workload};

fn main() {
    let filter: Option<String> = std::env::args().nth(1).filter(|a| !a.starts_with("--"));
    let opts = EvalOptions::Quick;
    for workload in paper_workloads() {
        if let Some(f) = &filter {
            if workload.name() != f {
                continue;
            }
        }
        calibrate(workload.as_ref(), &opts);
    }
}

fn calibrate(w: &dyn Workload, opts: &EvalOptions) {
    println!("=== {} ===", w.name());
    let t0 = Instant::now();
    let prof = profile_workload(w, &opts.profile_config()).expect("profile");
    println!(
        "profiling: {:.1}s wall, {} allocs, {} traces->sites {}, gens {}, conflicts {}, {} snapshots",
        t0.elapsed().as_secs_f64(),
        prof.recorded_allocations,
        prof.recorder_sites,
        prof.outcome.profile.sites().len(),
        prof.outcome.profile.generations_used().len(),
        prof.outcome.conflicts.len(),
        prof.snapshots.len(),
    );
    for (label, setup) in [
        ("G1", CollectorSetup::G1),
        ("NG2C", CollectorSetup::Ng2cManual),
        ("POLM2", CollectorSetup::Polm2(prof.outcome.profile.clone())),
        ("C4", CollectorSetup::C4),
    ] {
        let t0 = Instant::now();
        let r = run_workload(w, &setup, &opts.run_config()).expect("run");
        let mut h = r.pause_histogram();
        println!(
            "{label:>6}: {:.1}s wall | pauses {} | p50 {} p99 {} worst {} | tput {:.0} ops/s | mem {:.0} MiB",
            t0.elapsed().as_secs_f64(),
            h.len(),
            h.percentile(50.0).unwrap_or_default(),
            h.percentile(99.0).unwrap_or_default(),
            h.max().unwrap_or_default(),
            r.mean_throughput(),
            r.max_memory_bytes() as f64 / (1 << 20) as f64,
        );
    }
}
