//! Development tool: isolates where host time goes by running one simulated
//! minute of cassandra-wi under increasing instrumentation.

use std::time::Instant;

use polm2_core::{ProfilingSession, SnapshotPolicy};
use polm2_metrics::{SimDuration, SimTime};
use polm2_runtime::{Jvm, RuntimeConfig};
use polm2_workloads::cassandra::CassandraWorkload;
use polm2_workloads::Workload;

fn drive(jvm: &mut Jvm, secs: u64, mut per_op: impl FnMut(&mut Jvm)) -> u64 {
    let t = jvm.spawn_thread();
    let end = SimTime::from_secs(secs);
    let mut ops = 0;
    while jvm.now() < end {
        jvm.invoke(t, "Cassandra", "handleOp").expect("op");
        jvm.advance_mutator(SimDuration::from_micros(200));
        per_op(jvm);
        ops += 1;
    }
    ops
}

fn main() {
    let w = CassandraWorkload::write_intensive();
    let secs = 120;

    // 1. plain run (interpreter + GC only)
    let mut jvm = Jvm::builder(RuntimeConfig::paper_scaled())
        .hooks(w.hooks())
        .state(w.new_state(7))
        .build(w.program())
        .unwrap();
    let t0 = Instant::now();
    let ops = drive(&mut jvm, secs, |_| {});
    println!(
        "plain       : {:>6.1}s wall | {ops} ops | {} GCs | {} allocs | live {}",
        t0.elapsed().as_secs_f64(),
        jvm.gc_log().cycle_count(),
        jvm.heap().stats().allocated_objects,
        jvm.heap().object_count(),
    );

    // 2. + recorder agent (no snapshots)
    let session = ProfilingSession::new(SnapshotPolicy {
        every_n_cycles: u32::MAX,
    });
    let mut jvm = Jvm::builder(RuntimeConfig::paper_scaled())
        .hooks(w.hooks())
        .state(w.new_state(7))
        .transformer(session.recorder_agent())
        .build(w.program())
        .unwrap();
    let mut session = session;
    let t0 = Instant::now();
    drive(&mut jvm, secs, |jvm| {
        session.after_op(jvm).expect("after_op");
    });
    println!(
        "+recorder   : {:>6.1}s wall | {} recorded",
        t0.elapsed().as_secs_f64(),
        session.recorded_allocations()
    );

    // 3. + snapshots every cycle
    let session = ProfilingSession::new(SnapshotPolicy::default());
    let mut jvm = Jvm::builder(RuntimeConfig::paper_scaled())
        .hooks(w.hooks())
        .state(w.new_state(7))
        .transformer(session.recorder_agent())
        .build(w.program())
        .unwrap();
    let mut session = session;
    let t0 = Instant::now();
    drive(&mut jvm, secs, |jvm| {
        session.after_op(jvm).expect("after_op");
    });
    println!(
        "+snapshots  : {:>6.1}s wall | {} snapshots",
        t0.elapsed().as_secs_f64(),
        session.snapshots().len()
    );
}
