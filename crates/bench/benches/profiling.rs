//! Criterion benches: the profiling-phase components (Recorder ingestion,
//! STTree conflict machinery, the Analyzer pipeline) — the paper's concern
//! that profiling must not disrupt the application, measured in host time.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use polm2_core::{Analyzer, AnalyzerConfig, Recorder, SttTree};
use polm2_heap::{GenId, Heap, HeapConfig, IdentityHash, ObjectId};
use polm2_metrics::{SimDuration, SimTime};
use polm2_runtime::{ClassDef, CodeLoc, Instr, Loader, MethodDef, Program, SizeSpec, TraceFrame};
use polm2_snapshot::{Snapshot, SnapshotSeries};

fn recorder_ingest(c: &mut Criterion) {
    c.bench_function("recorder_ingest_10k_events", |b| {
        b.iter_batched(
            || {
                (0..10_000u64)
                    .map(|i| polm2_runtime::AllocEvent {
                        trace: vec![
                            TraceFrame {
                                class_idx: 0,
                                method_idx: (i % 7) as u16,
                                line: 1,
                            },
                            TraceFrame {
                                class_idx: 1,
                                method_idx: 0,
                                line: 5,
                            },
                        ],
                        object: ObjectId::new(i),
                        hash: IdentityHash::of(ObjectId::new(i)),
                        site: polm2_heap::SiteId::new(0),
                        at: SimTime::ZERO,
                    })
                    .collect::<Vec<_>>()
            },
            |events| {
                let mut recorder = Recorder::new();
                recorder.ingest(events);
                let total = recorder.records().total_records();
                total
            },
            BatchSize::SmallInput,
        )
    });
}

fn sttree_conflicts(c: &mut Criterion) {
    c.bench_function("sttree_build_detect_solve_200_paths", |b| {
        b.iter(|| {
            let mut tree = SttTree::new();
            let shared = CodeLoc::new("Helper", "alloc", 9);
            for i in 0..200u32 {
                tree.insert_path(
                    &[
                        CodeLoc::new("App", "op", i),
                        CodeLoc::new("Mid", "call", 5),
                        shared.clone(),
                    ],
                    GenId::new(i % 3),
                );
            }
            let conflicts = tree.detect_conflicts();
            tree.solve_conflicts(&conflicts).len()
        })
    });
}

fn analyzer_pipeline(c: &mut Criterion) {
    let mut program = Program::new();
    program.add_class(
        ClassDef::new("A")
            .with_method(MethodDef::new("m").push(Instr::alloc("X", SizeSpec::Fixed(8), 1)))
            .with_method(MethodDef::new("n").push(Instr::call("A", "m", 2))),
    );
    let mut heap = Heap::new(HeapConfig::small());
    let loaded = Loader::load(program, &mut [], &mut heap).expect("load");

    let mut recorder = Recorder::new();
    recorder.ingest(
        (0..50_000u64)
            .map(|i| polm2_runtime::AllocEvent {
                trace: vec![
                    TraceFrame {
                        class_idx: 0,
                        method_idx: 1,
                        line: 2,
                    },
                    TraceFrame {
                        class_idx: 0,
                        method_idx: 0,
                        line: 1,
                    },
                ],
                object: ObjectId::new(i),
                hash: IdentityHash::of(ObjectId::new(i)),
                site: polm2_heap::SiteId::new(0),
                at: SimTime::ZERO,
            })
            .collect(),
    );
    let records = recorder
        .into_records()
        .expect("no live agent holds the recorder");

    let mut series = SnapshotSeries::new();
    for s in 0..30u32 {
        let hashes = (0..50_000u64)
            .filter(|i| i % 5 >= (s % 5) as u64)
            .map(|i| IdentityHash::of(ObjectId::new(i)))
            .collect();
        series.push(Snapshot::new(
            s,
            SimTime::from_secs(u64::from(s)),
            hashes,
            4096,
            SimDuration::from_millis(1),
        ));
    }

    c.bench_function("analyzer_50k_records_30_snapshots", |b| {
        b.iter(|| {
            Analyzer::new(AnalyzerConfig::default())
                .analyze(&records, &series, &loaded)
                .profile
                .sites()
                .len()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = recorder_ingest, sttree_conflicts, analyzer_pipeline
}
criterion_main!(benches);
