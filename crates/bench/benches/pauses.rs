//! Criterion benches: collection mechanics — young evacuation and old-space
//! reclamation under the two heap layouts that decide the paper's story:
//! interleaved lifetimes (G1's world) vs. cohort-segregated lifetimes
//! (NG2C/POLM2's world).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use polm2_gc::{
    AllocRequest, Collector, G1Collector, GcConfig, Ng2cCollector, SafepointRoots, ThreadId,
};
use polm2_heap::{GenId, Heap, HeapConfig, SiteId};

fn alloc_req(heap: &mut Heap, size: u32, pretenure: bool) -> AllocRequest {
    AllocRequest {
        class: heap.classes_mut().intern("Blob"),
        size,
        site: SiteId::new(0),
        pretenure,
        thread: ThreadId::new(0),
    }
}

/// Interleaved cohort: half the objects are rooted (middle-lived), half are
/// garbage, all born young — the layout that forces copy/compact work.
fn g1_interleaved_collection(c: &mut Criterion) {
    c.bench_function("g1_minor_collection_interleaved_8k", |b| {
        b.iter_batched(
            || {
                let mut heap = Heap::new(HeapConfig::paper_scaled());
                let mut gc = G1Collector::new(GcConfig::default());
                gc.attach(&mut heap);
                let slot = heap.roots_mut().create_slot("keep");
                for i in 0..8_192 {
                    let req = alloc_req(&mut heap, 2048, false);
                    let out = gc
                        .alloc(&mut heap, req, &SafepointRoots::none())
                        .expect("alloc");
                    if i % 2 == 0 {
                        heap.roots_mut().push(slot, out.object);
                    }
                }
                (heap, gc)
            },
            |(mut heap, mut gc)| {
                let pauses = gc.collect(&mut heap, &SafepointRoots::none());
                pauses.iter().map(|p| p.pause.as_micros()).sum::<u64>()
            },
            BatchSize::SmallInput,
        )
    });
}

/// Segregated cohort: the same live mass, pretenured into its own
/// generation — the layout pretenuring buys, where regions die whole.
fn ng2c_segregated_collection(c: &mut Criterion) {
    c.bench_function("ng2c_collection_segregated_8k", |b| {
        b.iter_batched(
            || {
                let mut heap = Heap::new(HeapConfig::paper_scaled());
                let mut gc = Ng2cCollector::new(GcConfig::default());
                gc.attach(&mut heap);
                let gen = gc.new_generation(&mut heap);
                gc.set_target_gen(ThreadId::new(0), gen)
                    .expect("gen exists");
                let slot = heap.roots_mut().create_slot("keep");
                for i in 0..8_192 {
                    let pretenure = i % 2 == 0;
                    let req = alloc_req(&mut heap, 2048, pretenure);
                    let out = gc
                        .alloc(&mut heap, req, &SafepointRoots::none())
                        .expect("alloc");
                    if pretenure {
                        heap.roots_mut().push(slot, out.object);
                    }
                }
                (heap, gc)
            },
            |(mut heap, mut gc)| {
                let pauses = gc.collect(&mut heap, &SafepointRoots::none());
                pauses.iter().map(|p| p.pause.as_micros()).sum::<u64>()
            },
            BatchSize::SmallInput,
        )
    });
}

/// Marking throughput: the BFS over a linked heap.
fn mark_live_throughput(c: &mut Criterion) {
    c.bench_function("mark_live_64k_objects_chained", |b| {
        b.iter_batched(
            || {
                let mut heap = Heap::new(HeapConfig::paper_scaled());
                let class = heap.classes_mut().intern("Node");
                let slot = heap.roots_mut().create_slot("head");
                let old = heap.create_space(GenId::new(1), None);
                let mut prev = None;
                for _ in 0..65_536 {
                    let id = heap
                        .allocate(class, 256, SiteId::new(0), old)
                        .expect("alloc");
                    if let Some(p) = prev {
                        heap.add_ref(p, id).expect("link");
                    } else {
                        heap.roots_mut().push(slot, id);
                    }
                    prev = Some(id);
                }
                heap
            },
            |mut heap| heap.mark_live(&[]).len(),
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = g1_interleaved_collection, ng2c_segregated_collection, mark_live_throughput
}
criterion_main!(benches);
