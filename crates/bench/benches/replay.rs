//! Criterion benches for the Analyzer's replay path: the seed hash-probe
//! strategy vs. the columnar sorted-merge strategy, sequential and parallel.
//!
//! `perfgate` (src/bin/perfgate.rs) is the regression gate with JSON output;
//! these benches are for interactive profiling of the same code paths.

use criterion::{criterion_group, criterion_main, Criterion};

use polm2_core::{AllocationRecords, Analyzer, AnalyzerConfig, ReplayStrategy};
use polm2_heap::{Heap, HeapConfig, IdentityHash, ObjectId};
use polm2_metrics::{SimDuration, SimTime};
use polm2_runtime::{
    ClassDef, Instr, LoadedProgram, Loader, MethodDef, Program, SizeSpec, TraceFrame,
};
use polm2_snapshot::{Snapshot, SnapshotIndex, SnapshotSeries};

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// 100k records over 512 traces, 32 snapshots with per-trace lifespan bias —
/// the perf-gate's "large" shape.
fn build_inputs() -> (AllocationRecords, SnapshotSeries, LoadedProgram) {
    const CLASSES: usize = 32;
    const METHODS: usize = 8;
    const RECORDS: u64 = 100_000;
    const SNAPSHOTS: u32 = 32;
    let mut rng = 0x5eed_0000_0000_0001u64;
    let mut program = Program::new();
    for c in 0..CLASSES {
        let mut class = ClassDef::new(format!("Class{c}"));
        for m in 0..METHODS {
            class = class.with_method(MethodDef::new(format!("method{m}")).push(Instr::alloc(
                "Obj",
                SizeSpec::Fixed(32),
                1,
            )));
        }
        program.add_class(class);
    }
    let mut heap = Heap::new(HeapConfig::small());
    let loaded = Loader::load(program, &mut [], &mut heap).expect("load");

    let traces: Vec<Vec<TraceFrame>> = (0..512)
        .map(|_| {
            let depth = 1 + (xorshift(&mut rng) % 5) as usize;
            (0..depth)
                .map(|_| TraceFrame {
                    class_idx: (xorshift(&mut rng) % CLASSES as u64) as u16,
                    method_idx: (xorshift(&mut rng) % METHODS as u64) as u16,
                    line: 1 + (xorshift(&mut rng) % 60) as u32,
                })
                .collect()
        })
        .collect();
    let biases: Vec<u64> = (0..traces.len())
        .map(|_| xorshift(&mut rng) % (u64::from(SNAPSHOTS) + 1))
        .collect();

    let mut records = AllocationRecords::default();
    let mut live: Vec<Vec<IdentityHash>> = vec![Vec::new(); SNAPSHOTS as usize];
    for object in 0..RECORDS {
        let t = (xorshift(&mut rng) % traces.len() as u64) as usize;
        let hash = IdentityHash::of(ObjectId::new(object + 1));
        records.record(&traces[t], hash);
        let jitter = xorshift(&mut rng) % 4;
        let lifespan = (biases[t] + jitter).min(u64::from(SNAPSHOTS));
        for snap in live.iter_mut().take(lifespan as usize) {
            snap.push(hash);
        }
    }
    let series: SnapshotSeries = live
        .into_iter()
        .enumerate()
        .map(|(seq, hashes)| {
            Snapshot::new(
                seq as u32,
                SimTime::from_secs(seq as u64),
                hashes.iter().copied().collect(),
                4096,
                SimDuration::from_millis(1),
            )
        })
        .collect();
    (records, series, loaded)
}

fn replay(c: &mut Criterion) {
    let (records, series, loaded) = build_inputs();
    let workers = std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(4);
    let variants = [
        ("replay_hashprobe_seq", ReplayStrategy::HashProbe, 1),
        ("replay_merge_seq", ReplayStrategy::SortedMerge, 1),
        (
            "replay_merge_parallel",
            ReplayStrategy::SortedMerge,
            workers,
        ),
    ];
    for (name, strategy, parallelism) in variants {
        let analyzer = Analyzer::new(AnalyzerConfig {
            replay: strategy,
            parallelism,
            min_survivals: 1,
            ..AnalyzerConfig::default()
        });
        c.bench_function(name, |b| {
            b.iter(|| {
                analyzer
                    .analyze(&records, &series, &loaded)
                    .profile
                    .sites()
                    .len()
            })
        });
    }
}

fn index_build(c: &mut Criterion) {
    let (_, series, _) = build_inputs();
    c.bench_function("snapshot_index_build_and_accumulate", |b| {
        b.iter(|| SnapshotIndex::build(&series).survival_counts().len())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = replay, index_build
}
criterion_main!(benches);
