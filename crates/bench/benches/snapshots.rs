//! Criterion benches: snapshot capture — CRIU Dumper vs jmap, plus the
//! ablation of the Dumper's two optimizations (paper §3.2). These are the
//! micro-scale companions to the `fig3_4` binary.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use polm2_heap::{Heap, HeapConfig, SiteId};
use polm2_metrics::SimTime;
use polm2_snapshot::{CriuDumper, DumperOptions, HeapDumper, JmapDumper};

/// A heap with `live` rooted objects and `garbage` dead ones, all 2 KiB.
fn populated_heap(live: usize, garbage: usize) -> Heap {
    let mut heap = Heap::new(HeapConfig::paper_scaled());
    let class = heap.classes_mut().intern("Blob");
    let slot = heap.roots_mut().create_slot("keep");
    for i in 0..(live + garbage) {
        let id = heap
            .allocate(class, 2048, SiteId::new(0), Heap::YOUNG_SPACE)
            .expect("alloc");
        if i < live {
            heap.roots_mut().push(slot, id);
        }
    }
    heap
}

fn dumpers(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshot_capture_8k_live_8k_dead");
    group.sample_size(10);
    for (name, dumper) in [
        ("criu_both_opts", DumperOptions::default()),
        (
            "criu_no_need_only",
            DumperOptions {
                use_incremental: false,
                ..DumperOptions::default()
            },
        ),
        (
            "criu_incremental_only",
            DumperOptions {
                use_no_need: false,
                ..DumperOptions::default()
            },
        ),
        (
            "criu_no_opts",
            DumperOptions {
                use_no_need: false,
                use_incremental: false,
                ..DumperOptions::default()
            },
        ),
    ] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    (
                        populated_heap(8_192, 8_192),
                        CriuDumper::with_options(dumper),
                    )
                },
                |(mut heap, mut dumper)| {
                    dumper
                        .snapshot(&mut heap, SimTime::ZERO)
                        .expect("snapshot")
                        .size_bytes
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.bench_function("jmap", |b| {
        b.iter_batched(
            || populated_heap(8_192, 8_192),
            |mut heap| {
                JmapDumper::new()
                    .snapshot(&mut heap, SimTime::ZERO)
                    .expect("snapshot")
                    .size_bytes
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

/// The *simulated* cost ablation: how much of the snapshot's stop time each
/// optimization saves (printed as a side effect once, measured as the cheap
/// accounting it is).
fn simulated_cost_ablation(c: &mut Criterion) {
    c.bench_function("snapshot_cost_model_ablation", |b| {
        b.iter_batched(
            || populated_heap(4_096, 12_288),
            |mut heap| {
                let mut total = 0u64;
                for options in [
                    DumperOptions::default(),
                    DumperOptions {
                        use_no_need: false,
                        ..DumperOptions::default()
                    },
                ] {
                    let snap = CriuDumper::with_options(options)
                        .snapshot(&mut heap, SimTime::ZERO)
                        .expect("snapshot");
                    total += snap.capture_time.as_micros();
                }
                total
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = dumpers, simulated_cost_ablation
}
criterion_main!(benches);
