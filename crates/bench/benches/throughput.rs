//! Criterion benches: runtime interpretation throughput — how many simulated
//! workload operations per host second the harness sustains. (Simulated
//! throughput itself is deterministic; this measures the simulator.)

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use polm2_runtime::{Jvm, RuntimeConfig};
use polm2_workloads::cassandra::{self, CassandraConfig, CassandraState};
use polm2_workloads::lucene::{self, LuceneConfig, LuceneState};
use polm2_workloads::OpMix;

fn cassandra_ops(c: &mut Criterion) {
    c.bench_function("interpret_1k_cassandra_ops", |b| {
        b.iter_batched(
            || {
                let mut jvm = Jvm::builder(RuntimeConfig::paper_scaled())
                    .hooks(cassandra::hooks())
                    .state(Box::new(CassandraState::new(
                        CassandraConfig::paper(OpMix::WRITE_INTENSIVE),
                        9,
                    )))
                    .build(cassandra::program())
                    .expect("boot");
                let t = jvm.spawn_thread();
                (jvm, t)
            },
            |(mut jvm, t)| {
                for _ in 0..1_000 {
                    jvm.invoke(t, "Cassandra", "handleOp").expect("op");
                }
                jvm.heap().stats().allocated_objects
            },
            BatchSize::SmallInput,
        )
    });
}

fn lucene_ops(c: &mut Criterion) {
    c.bench_function("interpret_1k_lucene_ops", |b| {
        b.iter_batched(
            || {
                let mut jvm = Jvm::builder(RuntimeConfig::paper_scaled())
                    .hooks(lucene::hooks())
                    .state(Box::new(LuceneState::new(LuceneConfig::paper(), 9)))
                    .build(lucene::program())
                    .expect("boot");
                let t = jvm.spawn_thread();
                (jvm, t)
            },
            |(mut jvm, t)| {
                for _ in 0..1_000 {
                    jvm.invoke(t, "Lucene", "handleOp").expect("op");
                }
                jvm.heap().stats().allocated_objects
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = cassandra_ops, lucene_ops
}
criterion_main!(benches);
