//! Integration tests for the agent (load-time transformer) machinery: the
//! Recorder and Instrumenter rewriting real workload programs, and the
//! interplay between manual and generated profiles.

use polm2::core::{Instrumenter, ProductionSetup, Recorder};
use polm2::gc::{GcConfig, Ng2cCollector};
use polm2::runtime::{CodeLoc, Instr, Jvm, RuntimeConfig};
use polm2::workloads::cassandra::{self, CassandraConfig, CassandraState};
use polm2::workloads::graphchi;
use polm2::workloads::lucene;
use polm2::workloads::{paper_workloads, OpMix, Workload};

#[test]
fn recorder_agent_instruments_every_site_of_every_workload() {
    for workload in paper_workloads() {
        let recorder = Recorder::new();
        let mut program = workload.program();
        let expected = program.alloc_site_count() as u64;
        let mut agent = recorder.agent();
        for class in program.classes_mut() {
            agent.transform(class);
        }
        assert_eq!(
            recorder.instrumented_sites(),
            expected,
            "{}: every allocation site gets a logging callback",
            workload.name()
        );
        // Each Alloc is now followed by a RecordAlloc.
        let mut allocs = 0;
        let mut records = 0;
        program.visit_instrs(|_, _, i| match i {
            Instr::Alloc { .. } => allocs += 1,
            Instr::RecordAlloc { .. } => records += 1,
            _ => {}
        });
        assert_eq!(allocs, records, "{}", workload.name());
    }
}

#[test]
fn instrumenter_applies_manual_profiles_to_their_programs() {
    for workload in paper_workloads() {
        let profile = workload.manual_profile();
        let expected_sites = profile.sites().len() as u64;
        let inst = Instrumenter::new(profile);
        let mut program = workload.program();
        let mut agent = inst.agent();
        for class in program.classes_mut() {
            agent.transform(class);
        }
        assert_eq!(
            inst.stats().annotated_sites,
            expected_sites,
            "{}: every manual annotation matches a real site",
            workload.name()
        );
    }
}

#[test]
fn stacked_agents_compose_like_stacked_java_agents() {
    // Recorder then Instrumenter on the same load: profiling a production
    // setup is legal (re-profiling an already instrumented app).
    let recorder = Recorder::new();
    let setup = ProductionSetup::new(
        polm2::workloads::cassandra::CassandraWorkload::write_intensive().manual_profile(),
    );
    let config = CassandraConfig::small(OpMix::WRITE_INTENSIVE);
    let mut jvm = Jvm::builder(RuntimeConfig::small())
        .collector(Box::new(Ng2cCollector::new(GcConfig::default())))
        .hooks(cassandra::hooks())
        .state(Box::new(CassandraState::new(config, 3)))
        .transformer(setup.agent())
        .transformer(recorder.agent())
        .build(cassandra::program())
        .expect("both agents load");
    setup.prepare_generations(&mut jvm);
    let t = jvm.spawn_thread();
    for _ in 0..500 {
        jvm.invoke(t, "Cassandra", "handleOp").expect("op");
    }
    let events = jvm.drain_alloc_events();
    assert!(
        !events.is_empty(),
        "recorder still sees allocations under instrumentation"
    );
    jvm.heap().check_invariants();
}

#[test]
fn lucene_misplaced_manual_annotations_pretenure_search_scratch() {
    // The §5.4 story, mechanically: under the manual profile, search scratch
    // is pretenured (the expert's mistake); the site is path-blind.
    let w = polm2::workloads::lucene::LuceneWorkload::new(lucene::LuceneConfig::small());
    let setup = ProductionSetup::new(w.manual_profile());
    let mut jvm = Jvm::builder(RuntimeConfig::small())
        .collector(Box::new(Ng2cCollector::new(GcConfig::default())))
        .hooks(w.hooks())
        .state(w.new_state(5))
        .transformer(setup.agent())
        .build(w.program())
        .expect("loads");
    setup.prepare_generations(&mut jvm);
    let t = jvm.spawn_thread();
    for _ in 0..300 {
        jvm.invoke(t, "Lucene", "handleOp").expect("op");
    }
    // Find a live ByteBlock allocated via the search path: under the
    // misplaced profile, ALL ByteBlocks are pretenured, including scratch.
    let block_class = jvm.heap().classes().lookup("ByteBlock").unwrap();
    let pretenured_blocks = jvm.heap().stats().allocated_objects;
    assert!(pretenured_blocks > 0);
    // Check via allocation accounting on a fresh sample object.
    jvm.invoke(t, "Lucene", "handleOp").expect("op");
    let any_pretenured = (0..jvm.heap().stats().allocated_objects)
        .rev()
        .take(200)
        .filter_map(|i| jvm.heap().object(polm2::heap::ObjectId::new(i)))
        .any(|rec| rec.class() == block_class && !rec.allocated_gen().is_young());
    assert!(
        any_pretenured,
        "misplaced manual profile pretenures byte blocks"
    );
}

#[test]
fn graphchi_programs_share_structure_across_algorithms() {
    // PR and CC run the same program; only hooks/state differ — like the
    // real GraphChi binary running different vertex programs.
    let pr = graphchi::GraphchiWorkload::pagerank().program();
    let cc = graphchi::GraphchiWorkload::connected_components().program();
    assert_eq!(pr, cc);
}

#[test]
fn instrumenting_a_missing_site_is_harmless() {
    // Profiles survive program evolution: entries pointing at code that no
    // longer exists simply do not match (the paper's load-time rewriting has
    // the same property).
    let mut profile = polm2::core::AllocationProfile::new();
    profile.add_site(polm2::core::PretenuredSite {
        loc: CodeLoc::new("Gone", "method", 1),
        gen: polm2::heap::GenId::new(2),
        local: true,
    });
    let inst = Instrumenter::new(profile);
    let mut program = cassandra::program();
    let mut agent = inst.agent();
    for class in program.classes_mut() {
        agent.transform(class);
    }
    assert_eq!(inst.stats().annotated_sites, 0);
    assert_eq!(inst.stats().gen_call_pairs, 0);
}
