//! End-to-end integration: the full POLM2 pipeline (profile → analyze →
//! instrument → run) on the real workloads, spanning every crate.

use polm2::core::{AllocationProfile, AnalyzerConfig, FaultConfig};
use polm2::metrics::SimDuration;
use polm2::workloads::cassandra::CassandraWorkload;
use polm2::workloads::lucene::{LuceneConfig, LuceneWorkload};
use polm2::workloads::{
    profile_workload, run_workload, CollectorSetup, ProfilePhaseConfig, RunConfig,
};

fn quick_profile() -> ProfilePhaseConfig {
    ProfilePhaseConfig {
        duration: SimDuration::from_secs(60),
        analyzer: AnalyzerConfig::default(),
        ..ProfilePhaseConfig::paper()
    }
}

fn quick_run() -> RunConfig {
    RunConfig {
        duration: SimDuration::from_secs(90),
        warmup: SimDuration::from_secs(15),
        ..RunConfig::paper()
    }
}

#[test]
fn cassandra_profile_identifies_memtable_sites() {
    let workload = CassandraWorkload::write_intensive();
    let result = profile_workload(&workload, &quick_profile()).expect("profiling");
    let profile = &result.outcome.profile;
    assert!(
        !profile.is_empty(),
        "cassandra must yield a non-trivial profile"
    );
    // The cell allocation site (the paper's canonical middle-lived site)
    // must be pretenured.
    assert!(
        profile
            .site_at(&polm2::runtime::CodeLoc::new("Cell", "create", 82))
            .is_some(),
        "cell site missing from profile: {profile}"
    );
    // The obviously short-lived write response must not be.
    assert!(profile
        .site_at(&polm2::runtime::CodeLoc::new(
            "Cassandra",
            "handleWrite",
            14
        ))
        .is_none());
    // The two shared-helper conflicts are detected.
    assert_eq!(
        result.outcome.conflicts.len(),
        2,
        "{:?}",
        result.outcome.conflicts
    );
    // Recorder economics: every allocation recorded, sites interned once.
    assert!(result.recorded_allocations > 10_000);
    assert!(result.snapshots.len() > 3, "one snapshot per GC cycle");
}

#[test]
fn polm2_reduces_cassandra_pauses_vs_g1() {
    let workload = CassandraWorkload::write_intensive();
    let profile = profile_workload(&workload, &quick_profile())
        .expect("profiling")
        .outcome
        .profile;
    let run = quick_run();
    let g1 = run_workload(&workload, &CollectorSetup::G1, &run).expect("g1");
    let polm2 = run_workload(&workload, &CollectorSetup::Polm2(profile), &run).expect("polm2");

    let g1_worst = g1.pause_histogram().max().expect("g1 pauses exist");
    let polm2_worst = polm2.pause_histogram().max().expect("polm2 pauses exist");
    assert!(
        polm2_worst.as_micros() * 2 < g1_worst.as_micros(),
        "POLM2 must at least halve the worst pause: {polm2_worst} vs {g1_worst}"
    );
    let g1_total = g1.gc_log.total_pause();
    let polm2_total = polm2.gc_log.total_pause();
    assert!(
        polm2_total < g1_total,
        "total stop-the-world time must drop: {polm2_total} vs {g1_total}"
    );
    // And throughput must not regress meaningfully (paper: no negative impact).
    assert!(polm2.mean_throughput() > 0.95 * g1.mean_throughput());
    // Memory parity (paper Figure 9).
    assert!(polm2.max_memory_bytes() as f64 <= 1.25 * g1.max_memory_bytes() as f64);
}

#[test]
fn empty_profile_behaves_like_plain_ng2c() {
    let workload = CassandraWorkload::write_read();
    let run = quick_run();
    let ng2c_empty = run_workload(
        &workload,
        &CollectorSetup::Polm2(AllocationProfile::new()),
        &run,
    )
    .expect("ng2c");
    // With nothing pretenured, NG2C degenerates to a 2-generation collector;
    // the run completes and pauses exist.
    assert!(!ng2c_empty.pause_histogram().is_empty());
}

#[test]
fn lucene_profile_round_trips_through_text() {
    let workload = LuceneWorkload::new(LuceneConfig::paper());
    let result = profile_workload(&workload, &quick_profile()).expect("profiling");
    let text = result.outcome.profile.to_string();
    let parsed: AllocationProfile = text.parse().expect("parse back");
    assert_eq!(parsed, result.outcome.profile);
    // The term dictionary (immortal) must be pretenured.
    assert!(
        parsed
            .site_at(&polm2::runtime::CodeLoc::new("TermDict", "lookup", 21))
            .is_some(),
        "term dictionary missing: {text}"
    );
}

#[test]
fn chaotic_profiling_still_yields_a_safe_profile() {
    let workload = CassandraWorkload::write_intensive();
    let clean = profile_workload(&workload, &quick_profile()).expect("clean profiling");
    assert!(
        clean.counters.is_clean(),
        "no faults configured: {}",
        clean.counters
    );

    // Same phase, 10% fault injection on every boundary (duplication
    // excluded so degradation stays monotone).
    let chaos_config = ProfilePhaseConfig {
        faults: FaultConfig {
            record_duplicate_rate: 0.0,
            ..FaultConfig::all_at(0.10, 23)
        },
        ..quick_profile()
    };
    let chaos = profile_workload(&workload, &chaos_config).expect("chaos run completes");
    assert!(
        !chaos.counters.is_clean(),
        "10% chaos must be visible in the ledger"
    );
    // Degradation is monotone: the chaotic run may pretenure fewer sites,
    // never ones the fault-free run did not.
    for site in chaos.outcome.profile.sites() {
        assert!(
            clean.outcome.profile.site_at(&site.loc).is_some(),
            "chaos invented pretenured site {}",
            site.loc
        );
    }
}

#[test]
fn determinism_same_seed_same_results() {
    let workload = CassandraWorkload::read_intensive();
    let run = quick_run();
    let a = run_workload(&workload, &CollectorSetup::G1, &run).expect("run a");
    let b = run_workload(&workload, &CollectorSetup::G1, &run).expect("run b");
    assert_eq!(a.measured_ops, b.measured_ops);
    assert_eq!(a.gc_log.cycle_count(), b.gc_log.cycle_count());
    assert_eq!(a.gc_log.total_pause(), b.gc_log.total_pause());
    assert_eq!(a.max_memory_bytes(), b.max_memory_bytes());
}

#[test]
fn different_seeds_still_converge_in_shape() {
    let workload = CassandraWorkload::write_intensive();
    let run_a = quick_run();
    let run_b = RunConfig { seed: 99, ..run_a };
    let a = run_workload(&workload, &CollectorSetup::G1, &run_a).expect("run a");
    let b = run_workload(&workload, &CollectorSetup::G1, &run_b).expect("run b");
    // Throughput within 10% across seeds: the workload model is stable.
    let ratio = a.mean_throughput() / b.mean_throughput();
    assert!(
        (0.9..1.1).contains(&ratio),
        "throughput unstable across seeds: {ratio}"
    );
}
