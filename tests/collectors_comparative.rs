//! Comparative collector behaviour across the paper's workloads — the
//! qualitative claims of §5, checked as assertions at test scale.

use polm2::metrics::SimDuration;
use polm2::workloads::graphchi::GraphchiWorkload;
use polm2::workloads::lucene::LuceneWorkload;
use polm2::workloads::{
    profile_workload, run_workload, CollectorSetup, ProfilePhaseConfig, RunConfig,
};

fn quick_profile() -> ProfilePhaseConfig {
    ProfilePhaseConfig {
        duration: SimDuration::from_secs(60),
        ..ProfilePhaseConfig::paper()
    }
}

fn quick_run() -> RunConfig {
    RunConfig {
        duration: SimDuration::from_secs(90),
        warmup: SimDuration::from_secs(15),
        ..RunConfig::paper()
    }
}

#[test]
fn graphchi_batch_blocks_hurt_g1_but_not_polm2() {
    let workload = GraphchiWorkload::pagerank();
    let profile = profile_workload(&workload, &quick_profile())
        .expect("profile")
        .outcome
        .profile;
    let run = quick_run();
    let g1 = run_workload(&workload, &CollectorSetup::G1, &run).expect("g1");
    let polm2 = run_workload(&workload, &CollectorSetup::Polm2(profile), &run).expect("polm2");
    let g1_worst = g1.pause_histogram().max().expect("g1 pauses");
    let polm2_worst = polm2.pause_histogram().max().expect("polm2 pauses");
    assert!(
        polm2_worst.as_micros() * 2 < g1_worst.as_micros(),
        "pretenured edge blocks must tame pauses: {polm2_worst} vs {g1_worst}"
    );
}

#[test]
fn c4_pauses_stay_under_ten_ms_at_a_throughput_cost() {
    let workload = LuceneWorkload::paper();
    let run = quick_run();
    let g1 = run_workload(&workload, &CollectorSetup::G1, &run).expect("g1");
    let c4 = run_workload(&workload, &CollectorSetup::C4, &run).expect("c4");
    // Paper §5: "the duration of all pauses fall below 10 ms" for C4.
    let worst = c4.pause_histogram().max().expect("c4 pauses");
    assert!(
        worst < SimDuration::from_millis(10),
        "C4 worst pause {worst}"
    );
    // And the barrier tax costs throughput (Figure 7: C4 worst).
    assert!(
        c4.mean_throughput() < 0.90 * g1.mean_throughput(),
        "C4 {:.0} should trail G1 {:.0}",
        c4.mean_throughput(),
        g1.mean_throughput()
    );
    // And it pre-reserves the heap (Figure 9 prose).
    assert!(c4.max_memory_bytes() > g1.max_memory_bytes());
    assert_eq!(c4.max_memory_bytes(), run.runtime.heap.total_bytes);
}

#[test]
fn manual_ng2c_and_polm2_are_comparable_on_graphchi() {
    let workload = GraphchiWorkload::connected_components();
    let profile = profile_workload(&workload, &quick_profile())
        .expect("profile")
        .outcome
        .profile;
    let run = quick_run();
    let ng2c = run_workload(&workload, &CollectorSetup::Ng2cManual, &run).expect("ng2c");
    let polm2 = run_workload(&workload, &CollectorSetup::Polm2(profile), &run).expect("polm2");
    let ng2c_total = ng2c.gc_log.total_pause().as_micros() as f64;
    let polm2_total = polm2.gc_log.total_pause().as_micros() as f64;
    // The paper's core claim: automatic profiling matches manual expertise.
    // POLM2 must be within 2x of the expert (and often better).
    assert!(
        polm2_total <= 2.0 * ng2c_total,
        "POLM2 ({polm2_total}us) should be comparable to manual NG2C ({ng2c_total}us)"
    );
}

#[test]
fn all_collectors_preserve_heap_health_on_lucene() {
    let workload = LuceneWorkload::paper();
    let run = RunConfig {
        duration: SimDuration::from_secs(45),
        warmup: SimDuration::from_secs(10),
        ..RunConfig::paper()
    };
    let profile = profile_workload(&workload, &quick_profile())
        .expect("profile")
        .outcome
        .profile;
    for setup in [
        CollectorSetup::G1,
        CollectorSetup::Ng2cManual,
        CollectorSetup::Polm2(profile),
        CollectorSetup::C4,
    ] {
        let result = run_workload(&workload, &setup, &run)
            .unwrap_or_else(|e| panic!("{} failed: {e}", setup.label()));
        assert!(result.measured_ops > 0, "{} made progress", setup.label());
        assert!(
            result.max_memory_bytes() <= run.runtime.heap.total_bytes,
            "{} stayed within the heap",
            setup.label()
        );
    }
}
