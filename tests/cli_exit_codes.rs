//! The CLI's distinct exit codes: 2 for a missing profile or journal,
//! 3 for corruption (unparseable profile, bad checksum footer, defective
//! journal), 4 for a stale profile the runner refuses to launch on, 5 for
//! a fleet that completed degraded, 6 for a fleet with no survivors, 7 for
//! detected heap-memory corruption (`--verify-heap` / `--chaos-heap`), and
//! 8 for a run cut short by its hard heap limit (`--heap-mb`).

use std::path::PathBuf;
use std::process::Command;

use polm2::metrics::SimDuration;
use polm2::runtime::RuntimeConfig;
use polm2::snapshot::journal::{encode_frame, JOURNAL_VERSION, SEGMENT_MAGIC};
use polm2::workloads::registry::workload_by_name;
use polm2::workloads::{profile_workload_journaled, ProfilePhaseConfig};

fn polm2(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_polm2"))
        .args(args)
        .output()
        .expect("spawn polm2")
}

fn exit_code(args: &[&str]) -> i32 {
    polm2(args).status.code().expect("exit code")
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("polm2-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn run_distinguishes_missing_corrupt_and_stale_profiles() {
    let dir = tempdir("run");
    let missing = dir.join("nope.profile");
    assert_eq!(
        exit_code(&[
            "run",
            "cassandra-wi",
            "--collector",
            "polm2",
            "--profile",
            missing.to_str().unwrap(),
        ]),
        2,
        "missing profile"
    );

    let garbage = dir.join("garbage.profile");
    std::fs::write(&garbage, "this is not a profile\n").unwrap();
    assert_eq!(
        exit_code(&[
            "run",
            "cassandra-wi",
            "--collector",
            "polm2",
            "--profile",
            garbage.to_str().unwrap(),
        ]),
        3,
        "corrupt profile"
    );

    // Parses fine, but names an allocation site the workload does not have:
    // the runner must refuse to launch rather than silently pretenure nothing.
    let stale = dir.join("stale.profile");
    std::fs::write(&stale, "polm2-profile v1\nsite Nowhere missing 1 gen 2\n").unwrap();
    assert_eq!(
        exit_code(&[
            "run",
            "cassandra-wi",
            "--collector",
            "polm2",
            "--profile",
            stale.to_str().unwrap(),
        ]),
        4,
        "stale profile"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn tampering_with_a_sealed_profile_breaks_its_checksum_footer() {
    let dir = tempdir("crc");
    let tampered = dir.join("tampered.profile");
    // A sealed profile whose footer no longer matches its contents (the
    // generation was edited after sealing): the byte-level CRC must catch it
    // even though every line still parses.
    let mut text = String::from("polm2-profile v1\n");
    text.push_str("# polm2-crc deadbeef\n");
    std::fs::write(&tampered, &text).unwrap();
    let out = polm2(&[
        "run",
        "cassandra-wi",
        "--collector",
        "polm2",
        "--profile",
        tampered.to_str().unwrap(),
    ]);
    assert_eq!(
        out.status.code(),
        Some(3),
        "checksum mismatch is corruption"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("checksum"), "stderr: {stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fsck_classifies_missing_torn_and_repaired_journals() {
    let missing = std::env::temp_dir().join(format!("polm2-cli-nodir-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&missing);
    assert_eq!(
        exit_code(&["fsck", missing.to_str().unwrap()]),
        2,
        "missing dir"
    );

    // Hand-craft a torn segment: a good frame followed by a truncated one.
    let dir = tempdir("fsck");
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&SEGMENT_MAGIC);
    bytes.extend_from_slice(&JOURNAL_VERSION.to_le_bytes());
    bytes.extend_from_slice(&1u32.to_le_bytes());
    let frame = encode_frame(7, b"hello");
    bytes.extend_from_slice(&frame);
    bytes.extend_from_slice(&frame[..frame.len() - 3]);
    std::fs::write(dir.join("seg-000001.polm2j"), &bytes).unwrap();

    let seg = dir.to_str().unwrap();
    assert_eq!(exit_code(&["fsck", seg]), 3, "torn journal");
    assert_eq!(exit_code(&["fsck", seg, "--repair"]), 0, "repair truncates");
    assert_eq!(exit_code(&["fsck", seg]), 0, "clean after repair");
    // Repair kept the valid frame, dropped only the torn tail.
    let repaired = std::fs::read(dir.join("seg-000001.polm2j")).unwrap();
    assert_eq!(repaired.len(), 16 + frame.len());

    std::fs::remove_dir_all(&dir).ok();
}

/// Builds a committed tenant journal under `dir` with a real (but tiny)
/// profiling run of a registry workload, so `fleet --merge` can resolve the
/// workload from the journaled session header.
fn committed_tenant_journal(dir: &std::path::Path, seed: u64) {
    let workload = workload_by_name("cassandra-wi").expect("registry workload");
    let config = ProfilePhaseConfig {
        duration: SimDuration::from_secs(1),
        seed,
        runtime: RuntimeConfig::small(),
        ..ProfilePhaseConfig::short()
    };
    profile_workload_journaled(workload.as_ref(), &config, dir).expect("journaled run");
}

/// Chops the tail off a tenant's last journal segment, leaving an
/// uncommitted (torn) prefix the merge must quarantine.
fn tear_tenant_journal(dir: &std::path::Path) {
    let mut segs: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("journal dir")
        .map(|e| e.expect("entry").path())
        .collect();
    segs.sort();
    let last = segs.last().expect("at least one segment");
    let bytes = std::fs::read(last).expect("read segment");
    std::fs::write(last, &bytes[..bytes.len() - 10]).expect("truncate segment");
}

#[test]
fn fleet_merge_distinguishes_healthy_degraded_and_dead_fleets() {
    let missing = std::env::temp_dir().join(format!("polm2-cli-nofleet-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&missing);
    assert_eq!(
        exit_code(&["fleet", "--merge", missing.to_str().unwrap()]),
        2,
        "missing fleet root"
    );

    let root = tempdir("fleet");
    committed_tenant_journal(&root.join("tenant-00"), 7);
    committed_tenant_journal(&root.join("tenant-01"), 8);
    let out = root.join("fleet.profile");
    let merge_args = |root: &std::path::Path, out: &std::path::Path| {
        [
            "fleet".to_string(),
            "--merge".into(),
            root.to_str().unwrap().into(),
            "--out".into(),
            out.to_str().unwrap().into(),
        ]
    };
    let args = merge_args(&root, &out);
    let args: Vec<&str> = args.iter().map(String::as_str).collect();
    assert_eq!(exit_code(&args), 0, "two committed tenants merge cleanly");
    let clean = std::fs::read_to_string(&out).expect("merged profile");
    assert!(clean.starts_with("polm2-fleet v1"));
    assert!(clean.contains("tenant tenant-00 "));
    assert!(clean.contains("tenant tenant-01 "));

    // One torn tenant: completed degraded, survivors unchanged.
    tear_tenant_journal(&root.join("tenant-01"));
    assert_eq!(exit_code(&args), 5, "fleet completed degraded");
    let degraded = std::fs::read_to_string(&out).expect("merged profile");
    assert!(degraded.contains("# polm2-quarantined tenant-01 torn-journal"));
    let survivors = |text: &str| -> Vec<String> {
        text.lines()
            .filter(|l| !l.starts_with('#'))
            .map(String::from)
            .collect()
    };
    let healthy_only: Vec<String> = survivors(&clean)
        .into_iter()
        .scan(false, |in_t1, line| {
            // Drop tenant-01's block from the clean payload.
            if line.starts_with("tenant tenant-01 ") {
                *in_t1 = true;
            }
            let keep = !*in_t1;
            if line == "end tenant-01" {
                *in_t1 = false;
            }
            Some((keep, line))
        })
        .filter_map(|(keep, line)| keep.then_some(line))
        .collect();
    assert_eq!(
        survivors(&degraded),
        healthy_only,
        "degraded payload is the clean payload minus the torn tenant"
    );

    // Both torn: every tenant quarantined.
    tear_tenant_journal(&root.join("tenant-00"));
    assert_eq!(exit_code(&args), 6, "no survivors");

    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn heap_corruption_chaos_exits_with_the_corruption_code() {
    let dir = tempdir("chaos-heap");
    let out_path = dir.join("chaos.profile");
    // Rate 1.0 plants a corruption at the first post-op check; the implied
    // `--verify-heap full` detects it synchronously and nothing is written.
    let out = polm2(&[
        "profile",
        "cassandra-wi",
        "--minutes",
        "1",
        "--chaos-heap",
        "1.0",
        "--heap-backend",
        "real",
        "--out",
        out_path.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(7), "detected corruption exits 7");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("integrity violation"),
        "stderr names the violation: {stderr}"
    );
    assert!(!out_path.exists(), "no profile is written on corruption");

    // Planting needs real memory: the sim backend is refused up front.
    assert_eq!(
        exit_code(&["profile", "cassandra-wi", "--chaos-heap", "0.5"]),
        1,
        "--chaos-heap without --heap-backend real is a usage error"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn heap_limit_exhaustion_exits_oom_with_a_committed_journal() {
    let dir = tempdir("oom");
    let out_path = dir.join("oom.profile");
    let journal = dir.join("journal");
    // graphchi's first batch blows a 2 MiB budget immediately, even after
    // the emergency full collection.
    let out = polm2(&[
        "profile",
        "graphchi-cc",
        "--minutes",
        "1",
        "--heap-mb",
        "2",
        "--journal",
        journal.to_str().unwrap(),
        "--out",
        out_path.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(8), "heap-limit exhaustion exits 8");

    // The unwind is clean: the partial profile is flushed with the OOM
    // footer and the ledger, and the journal is committed and fsck-clean.
    let text = std::fs::read_to_string(&out_path).expect("partial profile written");
    assert!(text.contains("# polm2-oom"), "OOM footer present: {text}");
    assert!(
        text.contains("# polm2-faults heap-oom-aborts 1"),
        "OOM abort ledgered: {text}"
    );
    assert_eq!(
        exit_code(&["fsck", journal.to_str().unwrap()]),
        0,
        "the OOM run leaves a committed, fsck-clean journal"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn inspect_reports_missing_and_corrupt_profiles() {
    let dir = tempdir("inspect");
    let missing = dir.join("nope.profile");
    assert_eq!(exit_code(&["inspect", missing.to_str().unwrap()]), 2);
    let garbage = dir.join("garbage.profile");
    std::fs::write(&garbage, "polm2-profile v1\nsite A b x gen 2\n").unwrap();
    assert_eq!(exit_code(&["inspect", garbage.to_str().unwrap()]), 3);
    std::fs::remove_dir_all(&dir).ok();
}
