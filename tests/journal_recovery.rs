//! Crash-safe profiling end to end: a journaled session killed at any
//! moment must resume to the exact profile an uninterrupted run produces,
//! fsck must flag every injected torn write and bit flip, and repair must
//! never extend a journal past its last valid frame.

use std::path::{Path, PathBuf};

use polm2::core::journal::KIND_COMMIT;
use polm2::core::{
    FaultConfig, FaultyMedia, JournalRetryPolicy, PipelineError, ProfilingSession, SessionJournal,
    SessionMeta,
};
use polm2::metrics::{SimDuration, SimTime};
use polm2::runtime::{Jvm, RuntimeConfig};
use polm2::snapshot::journal::{fsck, recover, repair, SEGMENT_HEADER_LEN};
use polm2::snapshot::{FsMedia, JournalWriter};
use polm2::workloads::cassandra::{CassandraConfig, CassandraWorkload};
use polm2::workloads::{
    profile_workload, profile_workload_journaled, resume_profile, OpMix, ProfilePhaseConfig,
    ProfilePhaseResult, ResumeMode, Workload,
};

/// A deliberately tiny profiling setup (~15 ms real time, ~150 KiB journal)
/// so kill-at-many-offsets loops stay fast.
fn tiny_workload() -> CassandraWorkload {
    CassandraWorkload::new(
        "cassandra-tiny",
        CassandraConfig::small(OpMix::WRITE_INTENSIVE),
    )
}

fn tiny_config() -> ProfilePhaseConfig {
    ProfilePhaseConfig {
        duration: SimDuration::from_secs(1),
        runtime: RuntimeConfig::small(),
        ..ProfilePhaseConfig::short()
    }
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("polm2-jrec-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The journal's segment files in write order, as `(name, bytes)`.
fn segments(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut segs: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .expect("journal dir")
        .map(|e| {
            let e = e.expect("entry");
            let name = e.file_name().to_str().expect("utf8 name").to_string();
            let bytes = std::fs::read(e.path()).expect("read segment");
            (name, bytes)
        })
        .collect();
    segs.sort();
    segs
}

/// Byte offsets (into the concatenated append stream) of every frame
/// boundary, segment headers included.
fn frame_boundaries(segs: &[(String, Vec<u8>)]) -> Vec<usize> {
    let mut out = Vec::new();
    let mut base = 0usize;
    for (_, bytes) in segs {
        let mut off = SEGMENT_HEADER_LEN;
        out.push(base + off);
        while off + 8 <= bytes.len() {
            let len = u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4 bytes")) as usize;
            if off + 8 + len > bytes.len() {
                break;
            }
            off += 8 + len;
            out.push(base + off);
        }
        base += bytes.len();
    }
    out
}

/// Writes the journal state a crash at byte `offset` of the append stream
/// leaves behind: earlier segments whole and sealed, the segment containing
/// the offset truncated under its unsealed `.tmp` name (the crash beat the
/// rename), later segments never written.
fn crashed_copy(segs: &[(String, Vec<u8>)], offset: usize, dst: &Path) {
    let _ = std::fs::remove_dir_all(dst);
    std::fs::create_dir_all(dst).expect("create crash dir");
    let mut consumed = 0usize;
    for (name, bytes) in segs {
        let remaining = offset.saturating_sub(consumed);
        if remaining >= bytes.len() {
            std::fs::write(dst.join(name), bytes).expect("write segment");
        } else {
            let tmp = if name.ends_with(".tmp") {
                name.clone()
            } else {
                format!("{name}.tmp")
            };
            std::fs::write(dst.join(tmp), &bytes[..remaining]).expect("write torn segment");
            return;
        }
        consumed += bytes.len();
    }
}

fn assert_same_result(a: &ProfilePhaseResult, b: &ProfilePhaseResult, what: &str) {
    assert_eq!(
        a.outcome.profile, b.outcome.profile,
        "{what}: profiles differ"
    );
    assert_eq!(
        a.recorded_allocations, b.recorded_allocations,
        "{what}: allocation counts differ"
    );
    assert_eq!(
        a.snapshots.len(),
        b.snapshots.len(),
        "{what}: snapshot counts differ"
    );
    assert_eq!(
        a.recorder_sites, b.recorder_sites,
        "{what}: instrumented-site counts differ"
    );
}

#[test]
fn journaled_run_commits_and_replay_resume_matches_exactly() {
    let workload = tiny_workload();
    let config = tiny_config();
    let dir = tempdir("replay");

    let plain = profile_workload(&workload, &config).expect("plain run");
    let journaled = profile_workload_journaled(&workload, &config, &dir).expect("journaled run");
    // Journaling on healthy media is invisible: same profile, clean ledger.
    assert_same_result(&plain, &journaled, "journaled vs plain");
    assert!(journaled.counters.is_clean(), "{}", journaled.counters);

    let report = fsck(&mut FsMedia, &dir, KIND_COMMIT).expect("fsck");
    assert!(report.is_clean(), "{report}");
    assert!(report.committed, "clean shutdown must commit: {report}");

    // Resume on a committed journal replays; it must not re-execute.
    let resumed = resume_profile(&workload, &config, &dir).expect("resume");
    assert_eq!(resumed.mode, ResumeMode::Replayed);
    assert_same_result(&plain, &resumed.result, "replayed vs plain");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn kill_at_any_frame_resume_reproduces_the_profile() {
    let workload = tiny_workload();
    let config = tiny_config();
    let dir = tempdir("kill-ref");
    let reference = profile_workload_journaled(&workload, &config, &dir).expect("reference run");
    let segs = segments(&dir);
    let total: usize = segs.iter().map(|(_, b)| b.len()).sum();

    // Every frame boundary, plus offsets tearing the frame after it.
    let boundaries = frame_boundaries(&segs);
    assert!(boundaries.len() > 10, "journal too small to be interesting");
    let mut offsets: Vec<usize> = vec![0, 1, SEGMENT_HEADER_LEN - 1, total];
    for &b in &boundaries {
        offsets.push(b);
        offsets.push((b + 3).min(total));
    }
    offsets.sort_unstable();
    offsets.dedup();

    let crash_dir = tempdir("kill-crash");
    for offset in offsets {
        crashed_copy(&segs, offset, &crash_dir);
        let resumed = resume_profile(&workload, &config, &crash_dir).expect("resume after kill");
        if offset < total {
            assert_eq!(
                resumed.mode,
                ResumeMode::ReExecuted,
                "offset {offset}: a torn journal must re-execute"
            );
        }
        assert_same_result(
            &reference,
            &resumed.result,
            &format!("kill at byte {offset}"),
        );
        // The re-executed run leaves a fresh, committed journal behind:
        // resuming again replays without a third execution.
        let second = resume_profile(&workload, &config, &crash_dir).expect("second resume");
        assert_eq!(second.mode, ResumeMode::Replayed, "offset {offset}");
        assert_same_result(&reference, &second.result, "second resume");
    }

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&crash_dir).ok();
}

#[test]
fn truncation_at_byte_offsets_never_panics_and_repair_never_extends() {
    let workload = tiny_workload();
    let config = tiny_config();
    let dir = tempdir("sweep-ref");
    profile_workload_journaled(&workload, &config, &dir).expect("reference run");
    let segs = segments(&dir);
    let total: usize = segs.iter().map(|(_, b)| b.len()).sum();

    let crash_dir = tempdir("sweep-crash");
    // A dense sweep: every 97th byte, plus the fragile first bytes. (The
    // snapshot crate's property tests cover literally every offset against
    // an in-memory media; this exercises the same contract on the real
    // filesystem.)
    let offsets = (0..64).chain((64..=total).step_by(97)).chain([total]);
    for offset in offsets {
        crashed_copy(&segs, offset, &crash_dir);
        let recovered =
            recover(&mut FsMedia, &crash_dir, KIND_COMMIT).expect("recover never errors");
        // The valid prefix must replay cleanly — a recovered journal is
        // always a faithful session prefix, never a wrong profile.
        polm2::core::journal::replay(&recovered.frames).expect("prefix replays");
        let before = recovered.report.frames_valid;
        let after = repair(&mut FsMedia, &crash_dir, KIND_COMMIT).expect("repair");
        assert!(after.is_clean(), "offset {offset}: {after}");
        assert!(
            after.frames_valid <= before,
            "offset {offset}: repair extended the journal ({before} -> {})",
            after.frames_valid
        );
    }

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&crash_dir).ok();
}

/// Drives one journaled profiling session under seeded disk-fault injection,
/// returning the injected ground truth alongside the journal directory.
fn chaos_session(seed: u64, dir: &Path) -> Option<polm2::core::InjectedFaults> {
    let workload = tiny_workload();
    let config = ProfilePhaseConfig {
        faults: FaultConfig::disk_only_at(0.02, seed),
        ..tiny_config()
    };
    let mut session =
        ProfilingSession::with_faults(config.policy, config.faults).with_recovery(config.recovery);
    let injector = session.fault_injector().expect("faulted session");
    let media = Box::new(FaultyMedia::new(Box::new(FsMedia), injector.clone()));
    // Small segments force rotations, so torn renames get a chance to fire.
    let writer = JournalWriter::create_clean(media, dir, 16 * 1024).ok()?;
    let meta = SessionMeta {
        workload: workload.name().to_string(),
        seed: config.seed,
        duration: config.duration,
        every_n_cycles: config.policy.every_n_cycles,
    };
    let journal =
        SessionJournal::create(writer, &meta, JournalRetryPolicy::default(), &mut |_| {}).ok()?;
    session.attach_journal(journal);

    let mut jvm = Jvm::builder(config.runtime)
        .hooks(workload.hooks())
        .state(workload.new_state(config.seed))
        .transformer(session.recorder_agent())
        .build(workload.program())
        .expect("build jvm");
    let thread = jvm.spawn_thread();
    let (class, method) = workload.entry();
    let op_cost = workload.op_cost();
    let end = SimTime::ZERO + config.duration;
    while jvm.now() < end {
        jvm.invoke(thread, class, method).expect("invoke");
        jvm.advance_mutator(op_cost);
        session.after_op(&mut jvm).expect("after_op");
    }
    session
        .finish(&mut jvm, &config.analyzer)
        .expect("disk faults never fail the session");
    let injected = injector.borrow().injected();
    Some(injected)
}

#[test]
fn disk_chaos_corruption_is_always_detected() {
    let dir = tempdir("chaos");
    let mut corrupting_runs = 0u32;
    let mut any_faults = false;
    for seed in 1..=16u64 {
        let Some(injected) = chaos_session(seed, &dir) else {
            // Creation itself was hit: there is no journal to certify.
            continue;
        };
        any_faults |= injected.io_errors
            + injected.io_short_writes
            + injected.io_bit_flips
            + injected.io_torn_renames
            > 0;
        let report = fsck(&mut FsMedia, &dir, KIND_COMMIT).expect("fsck");
        if injected.io_short_writes + injected.io_bit_flips > 0 {
            corrupting_runs += 1;
            // The invariant: a journal whose bytes were corrupted is never
            // both defect-free and committed — resume always notices.
            assert!(
                !(report.is_clean() && report.committed),
                "seed {seed}: {} short writes, {} bit flips went undetected: {report}",
                injected.io_short_writes,
                injected.io_bit_flips
            );
        }
        // Repair never extends past the last valid frame, whatever happened.
        let before = report.frames_valid;
        let after = repair(&mut FsMedia, &dir, KIND_COMMIT).expect("repair");
        assert!(after.is_clean(), "seed {seed}: {after}");
        assert!(after.frames_valid <= before, "seed {seed}: repair extended");
    }
    assert!(
        any_faults,
        "chaos rate too low: no disk faults injected at all"
    );
    assert!(
        corrupting_runs >= 3,
        "chaos suite exercised only {corrupting_runs} corrupting runs; raise the rate"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_refuses_a_journal_from_another_workload() {
    let workload = tiny_workload();
    let config = tiny_config();
    let dir = tempdir("wrong-workload");
    profile_workload_journaled(&workload, &config, &dir).expect("journaled run");

    let other = CassandraWorkload::new(
        "cassandra-other",
        CassandraConfig::small(OpMix::READ_INTENSIVE),
    );
    let err = resume_profile(&other, &config, &dir).expect_err("wrong workload must be refused");
    assert!(matches!(err, PipelineError::Journal(_)), "{err}");
    assert!(err.to_string().contains("cassandra-tiny"), "{err}");

    std::fs::remove_dir_all(&dir).ok();
}
