//! Fleet supervision end to end: per-tenant fault isolation, quarantine
//! decisions matching the injected ground truth, and the degraded merge's
//! core invariant — a poisoned tenant never changes the merged payload
//! derived from healthy tenants.

use std::path::{Path, PathBuf};

use polm2::core::merge::{TenantInput, TenantStatus};
use polm2::core::AnalyzerConfig;
use polm2::metrics::SimDuration;
use polm2::runtime::RuntimeConfig;
use polm2::workloads::cassandra::{CassandraConfig, CassandraWorkload};
use polm2::workloads::registry::workload_by_name;
use polm2::workloads::{
    merge_fleet, profile_workload_journaled, run_fleet, ChaosPlan, FleetConfig, OpMix,
    ProfilePhaseConfig, QuarantineReason, TenantFault, TenantSpec, Workload, KILL_AFTER_COMMIT,
};

/// Resolver for the fleet: the tiny test workload plus the paper registry.
fn resolve(name: &str) -> Option<Box<dyn Workload>> {
    if name == "cassandra-tiny" {
        Some(Box::new(CassandraWorkload::new(
            "cassandra-tiny",
            CassandraConfig::small(OpMix::WRITE_INTENSIVE),
        )))
    } else {
        workload_by_name(name)
    }
}

/// A deliberately tiny profiling setup (~15 ms real time per tenant) so the
/// kill-at-every-stage and 16-seed sweeps stay fast.
fn tiny_config(seed: u64) -> ProfilePhaseConfig {
    ProfilePhaseConfig {
        duration: SimDuration::from_secs(1),
        seed,
        runtime: RuntimeConfig::small(),
        ..ProfilePhaseConfig::short()
    }
}

fn tiny_spec(tenant: &str, seed: u64) -> TenantSpec {
    TenantSpec {
        tenant: tenant.to_string(),
        workload: "cassandra-tiny".to_string(),
        config: tiny_config(seed),
    }
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("polm2-fleet-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The merged profile's payload: every non-comment line. The isolation
/// invariant is stated over exactly these lines.
fn payload(text: &str) -> Vec<String> {
    text.lines()
        .filter(|l| !l.starts_with('#'))
        .map(String::from)
        .collect()
}

/// Runs a fleet and merges its journals in one step.
fn run_and_merge(specs: &[TenantSpec], root: &Path, config: &FleetConfig) -> (usize, String) {
    let outcome = run_fleet(specs, root, config, resolve);
    let merged = merge_fleet(
        &outcome.tenant_inputs(),
        &AnalyzerConfig::default(),
        resolve,
    );
    let text = merged.render();
    std::fs::remove_dir_all(root).ok();
    (outcome.quarantined_count(), text)
}

/// One poisoned tenant — killed before, during, or after its journal
/// commits; stalled; or bit-rotted — must never change the merged payload
/// the healthy tenant produces. Bit-identical, at every stage.
#[test]
fn kill_at_every_stage_never_poisons_the_merge() {
    let specs = [tiny_spec("t-healthy", 11), tiny_spec("t-poison", 12)];

    // Reference: a fleet that never launched the poisoned tenant.
    let (quarantined, reference) =
        run_and_merge(&specs[..1], &tempdir("kill-ref"), &FleetConfig::default());
    assert_eq!(quarantined, 0, "reference fleet is healthy");
    let reference = payload(&reference);
    assert!(
        reference.iter().any(|l| l.starts_with("tenant t-healthy ")),
        "reference has the healthy tenant's block"
    );

    let stages: [(&str, TenantFault); 6] = [
        ("kill-before-first-op", TenantFault::Kill { at_op: 0 }),
        ("kill-mid-run", TenantFault::Kill { at_op: 7 }),
        ("kill-late", TenantFault::Kill { at_op: 64 }),
        (
            "kill-after-commit",
            TenantFault::Kill {
                at_op: KILL_AFTER_COMMIT,
            },
        ),
        ("stall", TenantFault::Stall { at_op: 5 }),
        ("bitrot", TenantFault::CorruptJournal),
    ];
    for (stage, fault) in stages {
        let config = FleetConfig {
            chaos: ChaosPlan::Scripted(vec![None, Some(fault)]),
            ..FleetConfig::default()
        };
        let (quarantined, merged) = run_and_merge(&specs, &tempdir(stage), &config);
        assert_eq!(quarantined, 1, "{stage}: exactly the poisoned tenant");
        assert_eq!(
            payload(&merged),
            reference,
            "{stage}: merged payload must be bit-identical to the healthy-only fleet"
        );
    }
}

/// The supervisor's quarantine decisions across 16 seeded chaos plans must
/// match the injected ground truth exactly: every corruption detected,
/// every kill and stall quarantined with the right reason, flaky starts
/// recovered iff they fit the retry budget.
#[test]
fn sixteen_seed_chaos_sweep_matches_injected_ground_truth() {
    for chaos_seed in 0..16u64 {
        let specs: Vec<TenantSpec> = (0..4)
            .map(|i| tiny_spec(&format!("t{i}"), 20 + i as u64))
            .collect();
        let config = FleetConfig {
            chaos: ChaosPlan::Seeded {
                seed: chaos_seed,
                rate: 0.6,
            },
            ..FleetConfig::default()
        };
        let root = tempdir(&format!("sweep-{chaos_seed}"));
        let outcome = run_fleet(&specs, &root, &config, resolve);

        let mut expected_quarantines = 0usize;
        for (i, tenant) in outcome.tenants.iter().enumerate() {
            let truth = config.chaos.fault_for(i);
            assert_eq!(
                tenant.injected, truth,
                "seed {chaos_seed} tenant {i}: outcome records the ground truth"
            );
            match truth {
                None => {
                    assert!(
                        tenant.healthy(),
                        "seed {chaos_seed} tenant {i}: no fault, no quarantine \
                         (got {:?})",
                        tenant.quarantine
                    );
                    assert!(tenant.records > 0);
                }
                Some(TenantFault::Kill { at_op }) => {
                    expected_quarantines += 1;
                    assert_eq!(
                        tenant.quarantine,
                        Some(QuarantineReason::Killed { at_op }),
                        "seed {chaos_seed} tenant {i}"
                    );
                }
                Some(TenantFault::Stall { .. }) => {
                    expected_quarantines += 1;
                    assert!(
                        matches!(
                            tenant.quarantine,
                            Some(QuarantineReason::DeadlineExceeded { .. })
                        ),
                        "seed {chaos_seed} tenant {i}: stall trips the watchdog \
                         (got {:?})",
                        tenant.quarantine
                    );
                }
                Some(TenantFault::CorruptJournal) => {
                    expected_quarantines += 1;
                    assert!(
                        matches!(
                            tenant.quarantine,
                            Some(QuarantineReason::JournalCorrupt { .. })
                        ),
                        "seed {chaos_seed} tenant {i}: corruption must always be \
                         detected (got {:?})",
                        tenant.quarantine
                    );
                }
                Some(TenantFault::FlakyStart { failures }) => {
                    if failures <= 2 {
                        assert!(
                            tenant.healthy(),
                            "seed {chaos_seed} tenant {i}: {failures} transient \
                             failures fit the retry budget (got {:?})",
                            tenant.quarantine
                        );
                        assert_eq!(tenant.retries, failures);
                    } else {
                        expected_quarantines += 1;
                        assert!(
                            matches!(
                                tenant.quarantine,
                                Some(QuarantineReason::RetryBudgetExhausted { attempts: 3, .. })
                            ),
                            "seed {chaos_seed} tenant {i} (got {:?})",
                            tenant.quarantine
                        );
                    }
                }
            }
        }
        assert_eq!(
            outcome.quarantined_count(),
            expected_quarantines,
            "seed {chaos_seed}: quarantine count matches injected ground truth"
        );

        // The merge must exclude exactly the quarantined tenants.
        let merged = merge_fleet(
            &outcome.tenant_inputs(),
            &AnalyzerConfig::default(),
            resolve,
        );
        assert_eq!(merged.quarantined_count(), expected_quarantines);
        let text = merged.render();
        for tenant in &outcome.tenants {
            let in_payload = payload(&text)
                .iter()
                .any(|l| l.starts_with(&format!("tenant {} ", tenant.tenant)));
            assert_eq!(
                in_payload,
                tenant.healthy(),
                "seed {chaos_seed}: tenant {} in payload iff healthy",
                tenant.tenant
            );
        }
        std::fs::remove_dir_all(&root).ok();
    }
}

/// The degraded merge tolerates what a real crashed fleet leaves behind:
/// committed journals merge, missing directories and torn tails are
/// quarantined with typed statuses and a salvage ledger — and the payload
/// still equals the healthy journal alone.
#[test]
fn merge_tolerates_missing_and_torn_journals() {
    let root = tempdir("tolerate");
    let workload = resolve("cassandra-tiny").unwrap();

    // Tenant a: committed journal.
    let dir_a = root.join("a");
    profile_workload_journaled(workload.as_ref(), &tiny_config(31), &dir_a).expect("journaled run");
    // Tenant b: never wrote a journal (directory missing).
    let dir_b = root.join("b");
    // Tenant c: committed, then its last segment lost its tail (torn).
    let dir_c = root.join("c");
    profile_workload_journaled(workload.as_ref(), &tiny_config(32), &dir_c).expect("journaled run");
    let mut segs: Vec<PathBuf> = std::fs::read_dir(&dir_c)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    segs.sort();
    let last = segs.last().expect("at least one segment");
    let bytes = std::fs::read(last).unwrap();
    std::fs::write(last, &bytes[..bytes.len() - 10]).unwrap();

    let inputs: Vec<TenantInput> = [("a", &dir_a), ("b", &dir_b), ("c", &dir_c)]
        .into_iter()
        .map(|(tenant, dir)| TenantInput {
            tenant: tenant.to_string(),
            dir: dir.clone(),
            exclude: None,
        })
        .collect();
    let merged = merge_fleet(&inputs, &AnalyzerConfig::default(), resolve);

    assert_eq!(merged.tenants.len(), 3);
    assert_eq!(merged.tenants[0].status, TenantStatus::Merged);
    assert_eq!(merged.tenants[1].status, TenantStatus::MissingJournal);
    assert!(
        matches!(
            merged.tenants[2].status,
            TenantStatus::TornJournal { frames_salvaged } if frames_salvaged > 0
        ),
        "torn journal keeps its salvaged prefix in the ledger: {:?}",
        merged.tenants[2].status
    );
    assert!(merged.is_degraded());
    assert_eq!(merged.merged_count(), 1);
    // The torn tenant's loss shows up in the fleet ledger.
    assert!(merged.aggregate_counters().journal_frames_truncated > 0);

    // Isolation: the payload equals a merge of the healthy journal alone.
    let healthy_only = merge_fleet(&inputs[..1], &AnalyzerConfig::default(), resolve);
    assert_eq!(payload(&merged.render()), payload(&healthy_only.render()));

    std::fs::remove_dir_all(&root).ok();
}

/// A quarantined tenant whose journal is pristine — killed after its commit
/// frame — must still be excluded: the supervisor's verdict, not the
/// journal's, decides membership.
#[test]
fn supervisor_verdict_overrides_a_committed_journal() {
    let specs = [tiny_spec("t-a", 41), tiny_spec("t-b", 42)];
    let config = FleetConfig {
        chaos: ChaosPlan::Scripted(vec![
            None,
            Some(TenantFault::Kill {
                at_op: KILL_AFTER_COMMIT,
            }),
        ]),
        ..FleetConfig::default()
    };
    let root = tempdir("verdict");
    let outcome = run_fleet(&specs, &root, &config, resolve);
    assert_eq!(outcome.quarantined_count(), 1);

    // The dead tenant's journal actually committed...
    let inputs = outcome.tenant_inputs();
    assert!(inputs[1].exclude.is_some());
    let merged = merge_fleet(&inputs, &AnalyzerConfig::default(), resolve);
    // ...but the supervisor's exclusion wins.
    assert_eq!(
        merged.tenants[1].status,
        TenantStatus::ExcludedBySupervisor {
            reason: inputs[1].exclude.clone().unwrap()
        }
    );
    assert!(!payload(&merged.render())
        .iter()
        .any(|l| l.starts_with("tenant t-b ")));
    std::fs::remove_dir_all(&root).ok();
}
