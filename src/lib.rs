//! # polm2 — a reproduction of POLM2 (Middleware '17)
//!
//! *POLM2: Automatic Profiling for Object Lifetime-Aware Memory Management
//! for HotSpot Big Data Applications* (Bruno & Ferreira, Middleware '17)
//! proposes a profiler that automatically pretenures objects: it records
//! allocations and heap snapshots, estimates per-allocation-site lifetimes,
//! resolves call-path conflicts with a stack-trace tree, and rewrites
//! application bytecode at load time to drive NG2C, an N-generational
//! pretenuring collector.
//!
//! Rust has no managed generational runtime to instrument, so this
//! repository reproduces the entire stack as a deterministic simulation (see
//! `DESIGN.md` for the substitution argument):
//!
//! | layer | crate |
//! |---|---|
//! | measurement (simulated time, percentiles, throughput) | [`metrics`] |
//! | heap (objects, pages, regions, spaces, roots, marking) | [`heap`] |
//! | collectors (G1, NG2C, C4) + pause cost model | [`gc`] |
//! | managed runtime (bytecode IR, loader agents, interpreter) | [`runtime`] |
//! | snapshots (CRIU-style Dumper, jmap baseline) | [`snapshot`] |
//! | **POLM2 itself** (Recorder, Analyzer, STTree, Instrumenter) | [`core`] |
//! | evaluation workloads (Cassandra, Lucene, GraphChi, YCSB) | [`workloads`] |
//!
//! # Quickstart
//!
//! Profile a workload, then run it in production with the generated profile
//! (the full paper pipeline):
//!
//! ```
//! use polm2::core::{AnalyzerConfig, ProfilingSession, SnapshotPolicy, ProductionSetup};
//! use polm2::gc::{GcConfig, Ng2cCollector};
//! use polm2::runtime::{Jvm, RuntimeConfig};
//! use polm2::workloads::cassandra::{self, CassandraConfig, CassandraState};
//! use polm2::workloads::OpMix;
//!
//! // --- profiling phase ---
//! let config = CassandraConfig::small(OpMix::WRITE_INTENSIVE);
//! let mut session = ProfilingSession::new(SnapshotPolicy::default());
//! let mut jvm = Jvm::builder(RuntimeConfig::small())
//!     .hooks(cassandra::hooks())
//!     .state(Box::new(CassandraState::new(config.clone(), 1)))
//!     .transformer(session.recorder_agent())
//!     .build(cassandra::program())?;
//! let t = jvm.spawn_thread();
//! for _ in 0..3_000 {
//!     jvm.invoke(t, "Cassandra", "handleOp")?;
//!     session.after_op(&mut jvm)?;
//! }
//! let report = session.finish(&mut jvm, &AnalyzerConfig::default())?;
//! assert!(report.counters.is_clean(), "no faults injected, none absorbed");
//!
//! // --- production phase ---
//! let setup = ProductionSetup::new(report.outcome.profile);
//! let mut jvm = Jvm::builder(RuntimeConfig::small())
//!     .collector(Box::new(Ng2cCollector::new(GcConfig::default())))
//!     .hooks(cassandra::hooks())
//!     .state(Box::new(CassandraState::new(config, 2)))
//!     .transformer(setup.agent())
//!     .build(cassandra::program())?;
//! setup.prepare_generations(&mut jvm);
//! let t = jvm.spawn_thread();
//! for _ in 0..1_000 {
//!     jvm.invoke(t, "Cassandra", "handleOp")?;
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The runnable entry points live in `examples/` and the figure harness in
//! `crates/bench`.

#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]

pub use polm2_core as core;
pub use polm2_gc as gc;
pub use polm2_heap as heap;
pub use polm2_metrics as metrics;
pub use polm2_runtime as runtime;
pub use polm2_snapshot as snapshot;
pub use polm2_workloads as workloads;
