//! The `polm2` command-line tool: profile a workload, save the allocation
//! profile, run workloads under any collector setup, and inspect profiles —
//! the paper's two-phase operation (§3.5) as a CLI.
//!
//! ```text
//! polm2 workloads
//! polm2 profile cassandra-wi --out wi.profile --minutes 6 --seed 7
//! polm2 run cassandra-wi --collector polm2 --profile wi.profile --minutes 15
//! polm2 run cassandra-wi --collector g1 --minutes 15
//! polm2 inspect wi.profile
//! ```

use std::io::Write;
use std::path::Path;
use std::process::ExitCode;

use polm2::core::journal::KIND_COMMIT;
use polm2::core::merge::TenantInput;
use polm2::core::{seal_profile_text, AllocationProfile, FaultConfig, PipelineError};
use polm2::gc::GcError;
use polm2::heap::{BackendKind, HeapError, VerifyMode};
use polm2::metrics::report::TextTable;
use polm2::metrics::{FaultCounters, SimDuration, STANDARD_PERCENTILES};
use polm2::runtime::RuntimeError;
use polm2::snapshot::{journal, FsMedia};
use polm2::workloads::registry::{paper_workloads, workload_by_name};
use polm2::workloads::{
    merge_fleet, profile_workload, profile_workload_journaled, resume_profile, run_fleet,
    run_workload, ChaosPlan, CollectorSetup, FleetConfig, ProfilePhaseConfig, ResumeMode,
    RunConfig, TenantSpec,
};

/// Exit code: generic failure.
const EXIT_FAILURE: u8 = 1;
/// Exit code: a required profile file does not exist.
const EXIT_PROFILE_MISSING: u8 = 2;
/// Exit code: a profile or journal exists but is corrupt (parse or
/// checksum failure, journal defects).
const EXIT_CORRUPT: u8 = 3;
/// Exit code: the profile parses but no longer matches the program (the
/// application changed since profiling; regenerate the profile).
const EXIT_PROFILE_STALE: u8 = 4;
/// Exit code: a fleet run (or merge) completed, but degraded — at least one
/// tenant was quarantined; the merged profile covers the survivors only.
const EXIT_FLEET_DEGRADED: u8 = 5;
/// Exit code: every tenant of a fleet was quarantined; no merged payload.
const EXIT_FLEET_ALL_QUARANTINED: u8 = 6;
/// Exit code: the heap-integrity verifier detected memory corruption
/// (`--verify-heap`, or the `--chaos-heap` arm's synchronous check).
const EXIT_HEAP_CORRUPT: u8 = 7;
/// Exit code: the run hit its hard heap limit (`--heap-mb`) even after an
/// emergency full collection. The unwind is clean: the journal (if any) is
/// committed and the partial profile is flushed with a `# polm2-oom` footer.
const EXIT_OOM: u8 = 8;

/// A CLI failure with a distinct exit code, so scripts can tell a missing
/// profile from a corrupt one from a stale one.
struct CliError {
    code: u8,
    message: String,
}

impl From<String> for CliError {
    fn from(message: String) -> Self {
        CliError {
            code: EXIT_FAILURE,
            message,
        }
    }
}

impl From<&str> for CliError {
    fn from(message: &str) -> Self {
        CliError::from(message.to_string())
    }
}

fn fail(code: u8, message: impl Into<String>) -> CliError {
    CliError {
        code,
        message: message.into(),
    }
}

/// Maps a pipeline failure to its exit code: detected heap corruption and
/// heap-limit exhaustion get distinct codes so scripts (and CI chaos jobs)
/// can tell them from generic failures.
fn pipeline_error(e: PipelineError) -> CliError {
    let code = match &e {
        PipelineError::Runtime(RuntimeError::Heap(HeapError::IntegrityViolation { .. }))
        | PipelineError::Runtime(RuntimeError::Gc(GcError::Heap(
            HeapError::IntegrityViolation { .. },
        ))) => EXIT_HEAP_CORRUPT,
        PipelineError::Runtime(RuntimeError::Gc(GcError::OutOfMemory { .. }))
        | PipelineError::Runtime(RuntimeError::Heap(HeapError::OutOfMemory { .. })) => EXIT_OOM,
        _ => EXIT_FAILURE,
    };
    fail(code, e.to_string())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("workloads") => cmd_workloads(),
        Some("profile") => cmd_profile(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("inspect") => cmd_inspect(&args[1..]),
        Some("fsck") => cmd_fsck(&args[1..]),
        Some("fleet") => cmd_fleet(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(CliError::from(format!(
            "unknown command {other:?}; try --help"
        ))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {}", e.message);
            ExitCode::from(e.code)
        }
    }
}

fn print_usage() {
    println!(
        "polm2 — object lifetime-aware memory management, reproduced\n\n\
         USAGE:\n\
         \x20 polm2 workloads                          list the paper's workloads\n\
         \x20 polm2 profile <workload> [options]       run the profiling phase\n\
         \x20     --out <file>       write the allocation profile (default: <workload>.profile)\n\
         \x20     --minutes <n>      profiling length in simulated minutes (default 6)\n\
         \x20     --seed <n>         workload seed (default 7)\n\
         \x20     --chaos <rate>     inject faults at this rate, 0.0-1.0 (default 0)\n\
         \x20     --chaos-seed <n>   fault-injection seed (default 1)\n\
         \x20     --gc-workers <n>   GC mark/evacuate worker threads (default 1; the\n\
         \x20                        profile is bit-identical at any worker count)\n\
         \x20     --heap-backend <b> sim | real (default sim; real backs regions with\n\
         \x20                        actual memory — the profile is bit-identical)\n\
         \x20     --tlab-kb <n>      real-backend allocation window size in KiB\n\
         \x20                        (default 256; never changes placement)\n\
         \x20     --verify-heap <m>  off | gc | full — run the heap-integrity verifier at\n\
         \x20                        safepoints (default off; trajectories are bit-identical\n\
         \x20                        at any mode); violations exit 7\n\
         \x20     --heap-mb <n>      hard heap limit in MiB; an allocation that still fails\n\
         \x20                        after an emergency full collection aborts the run with\n\
         \x20                        exit 8, leaving a committed journal and a partial\n\
         \x20                        profile marked `# polm2-oom`\n\
         \x20     --chaos-heap <r>   plant seeded memory corruption (bit flips, header\n\
         \x20                        clobbers, stray writes) at this rate; needs\n\
         \x20                        --heap-backend real, implies --verify-heap full\n\
         \x20     --journal <dir>    stream the session into a crash-safe journal\n\
         \x20     --resume           finish from the journal in <dir>: replay a committed\n\
         \x20                        run, or re-execute a crashed one deterministically\n\
         \x20 polm2 fsck <dir> [--repair]              check (and repair) a session journal\n\
         \x20     exit 0 = clean, 3 = defects found; --repair truncates to the\n\
         \x20     last valid frame and drops unreachable segments — it never invents data\n\
         \x20 polm2 fleet [options]                    run a supervised multi-tenant fleet\n\
         \x20     --tenants <n>      concurrent tenant runtimes (default 4)\n\
         \x20     --minutes <n>      per-tenant profiling length in simulated minutes (default 2)\n\
         \x20     --seed <n>         base workload seed; tenant i uses seed+i (default 7)\n\
         \x20     --chaos <rate>     per-tenant fault probability, 0.0-1.0 (default 0)\n\
         \x20     --chaos-seed <n>   chaos plan seed (default 1)\n\
         \x20     --gc-workers <n>   GC worker threads per tenant runtime (default 1)\n\
         \x20     --heap-backend <b> sim | real per tenant heap (default sim)\n\
         \x20     --tlab-kb <n>      real-backend allocation window size in KiB (default 256)\n\
         \x20     --verify-heap <m>  off | gc | full per tenant runtime (default off)\n\
         \x20     --heap-mb <n>      hard per-tenant heap quota in MiB; a tenant that\n\
         \x20                        exhausts it is quarantined (reason `oom`)\n\
         \x20     --chaos-heap <r>   plant per-tenant seeded memory corruption; a tenant\n\
         \x20                        whose verifier trips is quarantined (`heap-corrupt`);\n\
         \x20                        needs --heap-backend real, implies --verify-heap full\n\
         \x20     --journal-root <d> per-tenant journal directories (default polm2-fleet)\n\
         \x20     --out <file>       write the merged fleet profile (default fleet.profile)\n\
         \x20     --merge <root>     merge-only: recover and merge existing tenant journals\n\
         \x20                        under <root> (no tenants are run)\n\
         \x20     exit 0 = all tenants healthy, 5 = completed degraded (quarantines;\n\
         \x20     merged profile covers survivors only), 6 = every tenant quarantined\n\
         \x20 polm2 run <workload> [options]           run the production phase\n\
         \x20     --collector <c>    g1 | ng2c | c4 | polm2 (default g1)\n\
         \x20     --profile <file>   allocation profile (required for --collector polm2)\n\
         \x20                        exit 2 = missing, 3 = corrupt, 4 = stale profile\n\
         \x20     --minutes <n>      run length in simulated minutes (default 15)\n\
         \x20     --warmup <n>       ignored prefix in simulated minutes (default 3)\n\
         \x20     --seed <n>         workload seed (default 42)\n\
         \x20     --gc-workers <n>   GC mark/evacuate worker threads (default 1)\n\
         \x20     --heap-backend <b> sim | real (default sim)\n\
         \x20     --tlab-kb <n>      real-backend allocation window size in KiB (default 256)\n\
         \x20     --verify-heap <m>  off | gc | full (default off); violations exit 7\n\
         \x20     --heap-mb <n>      hard heap limit in MiB; exhaustion exits 8\n\
         \x20 polm2 inspect <file>                     pretty-print a profile"
    );
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_u64(args: &[String], name: &str, default: u64) -> Result<u64, String> {
    match flag(args, name) {
        Some(v) => v
            .parse()
            .map_err(|_| format!("{name} expects a number, got {v:?}")),
        None => Ok(default),
    }
}

fn parse_f64(args: &[String], name: &str, default: f64) -> Result<f64, String> {
    match flag(args, name) {
        Some(v) => v
            .parse()
            .map_err(|_| format!("{name} expects a number, got {v:?}")),
        None => Ok(default),
    }
}

fn parse_backend(args: &[String]) -> Result<BackendKind, String> {
    match flag(args, "--heap-backend") {
        Some(v) => BackendKind::parse(&v)
            .ok_or_else(|| format!("--heap-backend expects sim or real, got {v:?}")),
        None => Ok(BackendKind::Sim),
    }
}

/// Parses `--tlab-kb` if present; `None` keeps the heap's default window.
fn parse_tlab_kb(args: &[String]) -> Result<Option<u64>, String> {
    match flag(args, "--tlab-kb") {
        Some(v) => match v.parse::<u64>() {
            Ok(kb) if kb > 0 => Ok(Some(kb)),
            _ => Err(format!("--tlab-kb expects a positive KiB count, got {v:?}")),
        },
        None => Ok(None),
    }
}

/// Parses `--verify-heap` (default `off`).
fn parse_verify(args: &[String]) -> Result<VerifyMode, String> {
    match flag(args, "--verify-heap") {
        Some(v) => VerifyMode::parse(&v)
            .ok_or_else(|| format!("--verify-heap expects off, gc, or full, got {v:?}")),
        None => Ok(VerifyMode::Off),
    }
}

/// Parses `--heap-mb` if present; `None` leaves the heap unlimited.
fn parse_heap_mb(args: &[String]) -> Result<Option<u64>, String> {
    match flag(args, "--heap-mb") {
        Some(v) => match v.parse::<u64>() {
            Ok(mb) if mb > 0 => Ok(Some(mb)),
            _ => Err(format!("--heap-mb expects a positive MiB count, got {v:?}")),
        },
        None => Ok(None),
    }
}

/// Parses `--chaos-heap` (memory-corruption injection rate) and checks its
/// prerequisites: planting needs real memory to flip bits in, and detection
/// needs the verifier on at every safepoint.
fn parse_chaos_heap(args: &[String], backend: BackendKind) -> Result<f64, String> {
    let rate = parse_f64(args, "--chaos-heap", 0.0)?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(format!(
            "--chaos-heap expects a rate in 0.0..=1.0, got {rate}"
        ));
    }
    if rate > 0.0 && backend != BackendKind::Real {
        return Err(
            "--chaos-heap needs --heap-backend real (there is no memory to corrupt \
                    on the sim backend)"
                .into(),
        );
    }
    Ok(rate)
}

fn cmd_workloads() -> Result<(), CliError> {
    let mut table = TextTable::new(vec![
        "name".into(),
        "entry".into(),
        "candidate sites".into(),
        "op cost".into(),
    ]);
    for w in paper_workloads() {
        let (class, method) = w.entry();
        table.add_row(vec![
            w.name().into(),
            format!("{class}.{method}"),
            w.candidate_sites().to_string(),
            w.op_cost().to_string(),
        ]);
    }
    println!("{}", table.render());
    Ok(())
}

fn cmd_profile(args: &[String]) -> Result<(), CliError> {
    let name = args.first().ok_or("profile needs a workload name")?;
    let workload = workload_by_name(name).ok_or_else(|| format!("unknown workload {name:?}"))?;
    let minutes = parse_u64(args, "--minutes", 6)?;
    let seed = parse_u64(args, "--seed", 7)?;
    let chaos = parse_f64(args, "--chaos", 0.0)?;
    if !(0.0..=1.0).contains(&chaos) {
        return Err(CliError::from(format!(
            "--chaos expects a rate in 0.0..=1.0, got {chaos}"
        )));
    }
    let chaos_seed = parse_u64(args, "--chaos-seed", 1)?;
    let gc_workers = parse_u64(args, "--gc-workers", 1)?;
    let backend = parse_backend(args)?;
    let tlab_kb = parse_tlab_kb(args)?;
    let chaos_heap = parse_chaos_heap(args, backend)?;
    let mut verify = parse_verify(args)?;
    let heap_mb = parse_heap_mb(args)?;
    let out = flag(args, "--out").unwrap_or_else(|| format!("{name}.profile"));
    let journal_dir = flag(args, "--journal");
    let resume = args.iter().any(|a| a == "--resume");
    if resume && journal_dir.is_none() {
        return Err(CliError::from("--resume needs --journal <dir>"));
    }
    if chaos_heap > 0.0 && verify == VerifyMode::Off {
        // A planted corruption must be *detected*, not silently executed on:
        // the chaos arm implies the strictest verification cadence.
        verify = VerifyMode::Full;
    }

    let mut faults = FaultConfig::all_at(chaos, chaos_seed);
    if chaos_heap > 0.0 {
        faults.heap_bit_flip_rate = chaos_heap;
        faults.heap_header_clobber_rate = chaos_heap;
        faults.heap_stray_write_rate = chaos_heap;
    }
    let mut config = ProfilePhaseConfig {
        duration: SimDuration::from_secs(minutes * 60),
        seed,
        faults,
        ..ProfilePhaseConfig::paper()
    };
    config.runtime = config
        .runtime
        .with_gc_workers(gc_workers as usize)
        .with_heap_backend(backend)
        .with_verify_heap(verify)
        .with_heap_limit_mb(heap_mb);
    if let Some(kb) = tlab_kb {
        config.runtime = config.runtime.with_tlab_kb(kb);
    }
    if chaos > 0.0 {
        eprintln!(
            "profiling {name} for {minutes} simulated minutes \
             (seed {seed}, chaos {chaos} seed {chaos_seed}) ..."
        );
    } else {
        eprintln!("profiling {name} for {minutes} simulated minutes (seed {seed}) ...");
    }
    let result = match &journal_dir {
        Some(dir) if resume => {
            let resumed = resume_profile(workload.as_ref(), &config, Path::new(dir))
                .map_err(pipeline_error)?;
            match resumed.mode {
                ResumeMode::Replayed => eprintln!(
                    "journal {dir} is committed ({} frames): profile finalized from \
                     replay, no re-execution",
                    resumed.report.frames_valid
                ),
                ResumeMode::ReExecuted => eprintln!(
                    "journal {dir} is incomplete ({} valid frames, {} defective \
                     segments): re-executed the session deterministically",
                    resumed.report.frames_valid,
                    resumed.report.defective_segments()
                ),
            }
            resumed.result
        }
        Some(dir) => profile_workload_journaled(workload.as_ref(), &config, Path::new(dir))
            .map_err(pipeline_error)?,
        None => profile_workload(workload.as_ref(), &config).map_err(pipeline_error)?,
    };
    eprintln!(
        "recorded {} allocations over {} snapshots; {} sites pretenured, {} conflicts",
        result.recorded_allocations,
        result.snapshots.len(),
        result.outcome.profile.sites().len(),
        result.outcome.conflicts.len(),
    );
    if !result.counters.is_clean() {
        eprintln!("degraded: {}", result.counters);
    }
    let mut text = result.outcome.profile.to_string();
    // Record the degradation ledger in the file itself: `#` lines are
    // comments to the profile parser, so the round trip is unaffected.
    for (name, value) in result.counters.entries() {
        if value > 0 {
            text.push_str(&format!("# polm2-faults {name} {value}\n"));
        }
    }
    if result.oom {
        // The profile is still valid (under-observation only demotes sites),
        // but mark it partial so downstream readers know the run was cut.
        text.push_str("# polm2-oom profiling run hit its hard heap limit; partial profile\n");
    }
    // Seal and write atomically: readers never see a torn profile, and the
    // checksum footer turns later on-disk corruption into a typed error.
    seal_profile_text(&mut text);
    write_atomic(&out, &text)?;
    println!("wrote {out}");
    if result.oom {
        return Err(fail(
            EXIT_OOM,
            format!(
                "{name}: profiling run hit its hard heap limit; partial profile written to {out}"
            ),
        ));
    }
    Ok(())
}

/// Writes via a temp file + fsync + rename, so a crash mid-write leaves
/// either the old file or the new one — never a torn mix.
fn write_atomic(path: &str, text: &str) -> Result<(), String> {
    let tmp = format!("{path}.tmp");
    let write = (|| -> std::io::Result<()> {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(text.as_bytes())?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    write.map_err(|e| {
        let _ = std::fs::remove_file(&tmp);
        format!("writing {path}: {e}")
    })
}

fn cmd_fsck(args: &[String]) -> Result<(), CliError> {
    let dir = args.first().ok_or("fsck needs a journal directory")?;
    let repair = args.iter().any(|a| a == "--repair");
    if !Path::new(dir).is_dir() {
        return Err(fail(
            EXIT_PROFILE_MISSING,
            format!("{dir}: no such journal directory"),
        ));
    }
    let mut media = FsMedia;
    let report = if repair {
        journal::repair(&mut media, Path::new(dir), KIND_COMMIT)
    } else {
        journal::fsck(&mut media, Path::new(dir), KIND_COMMIT)
    }
    .map_err(|e| e.to_string())?;
    println!("{report}");
    if !report.is_clean() {
        return Err(fail(
            EXIT_CORRUPT,
            format!(
                "{dir}: {} defective segment(s), {} missing; run `polm2 fsck {dir} --repair` \
                 to truncate to the last valid frame",
                report.defective_segments(),
                report.missing_segments.len()
            ),
        ));
    }
    Ok(())
}

fn cmd_fleet(args: &[String]) -> Result<(), CliError> {
    let out = flag(args, "--out").unwrap_or_else(|| "fleet.profile".into());
    let analyzer = polm2::core::AnalyzerConfig::default();

    let merged = if let Some(root) = flag(args, "--merge") {
        // Merge-only mode: every subdirectory of <root> is one tenant's
        // journal; the workload is resolved from the journaled session
        // header, so the journals are self-describing.
        if !Path::new(&root).is_dir() {
            return Err(fail(
                EXIT_PROFILE_MISSING,
                format!("{root}: no such fleet journal root"),
            ));
        }
        let mut inputs: Vec<TenantInput> = std::fs::read_dir(&root)
            .map_err(|e| format!("reading {root}: {e}"))?
            .filter_map(|e| e.ok())
            .filter(|e| e.path().is_dir())
            .map(|e| TenantInput {
                tenant: e.file_name().to_string_lossy().into_owned(),
                dir: e.path(),
                exclude: None,
            })
            .collect();
        inputs.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        if inputs.is_empty() {
            return Err(fail(
                EXIT_PROFILE_MISSING,
                format!("{root}: no tenant journal directories found"),
            ));
        }
        eprintln!(
            "merging {} tenant journal(s) under {root} ...",
            inputs.len()
        );
        merge_fleet(&inputs, &analyzer, workload_by_name)
    } else {
        let tenants = parse_u64(args, "--tenants", 4)?;
        if tenants == 0 {
            return Err(CliError::from("--tenants expects at least 1"));
        }
        let minutes = parse_u64(args, "--minutes", 2)?;
        let seed = parse_u64(args, "--seed", 7)?;
        let chaos = parse_f64(args, "--chaos", 0.0)?;
        if !(0.0..=1.0).contains(&chaos) {
            return Err(CliError::from(format!(
                "--chaos expects a rate in 0.0..=1.0, got {chaos}"
            )));
        }
        let chaos_seed = parse_u64(args, "--chaos-seed", 1)?;
        let gc_workers = parse_u64(args, "--gc-workers", 1)?;
        let backend = parse_backend(args)?;
        let tlab_kb = parse_tlab_kb(args)?;
        let chaos_heap = parse_chaos_heap(args, backend)?;
        let mut verify = parse_verify(args)?;
        let heap_mb = parse_heap_mb(args)?;
        if chaos_heap > 0.0 && verify == VerifyMode::Off {
            verify = VerifyMode::Full;
        }
        let root = flag(args, "--journal-root").unwrap_or_else(|| "polm2-fleet".into());

        let workloads = paper_workloads();
        let specs: Vec<TenantSpec> = (0..tenants)
            .map(|i| {
                let workload = &workloads[i as usize % workloads.len()];
                let mut config = ProfilePhaseConfig {
                    duration: SimDuration::from_secs(minutes * 60),
                    seed: seed + i,
                    ..ProfilePhaseConfig::paper()
                };
                if chaos_heap > 0.0 {
                    // Each tenant draws its corruption plants from its own
                    // seeded stream, so one tenant's faults never shift
                    // another's — the fleet's isolation contract.
                    config.faults = FaultConfig::heap_only_at(chaos_heap, chaos_seed + i);
                }
                config.runtime = config
                    .runtime
                    .with_gc_workers(gc_workers as usize)
                    .with_heap_backend(backend)
                    .with_verify_heap(verify)
                    // The heap budget is a per-tenant quota: each tenant's
                    // runtime owns its own heap.
                    .with_heap_limit_mb(heap_mb);
                if let Some(kb) = tlab_kb {
                    config.runtime = config.runtime.with_tlab_kb(kb);
                }
                TenantSpec {
                    tenant: format!("tenant-{i:02}"),
                    workload: workload.name().to_string(),
                    config,
                }
            })
            .collect();
        let config = FleetConfig {
            chaos: if chaos > 0.0 {
                ChaosPlan::Seeded {
                    seed: chaos_seed,
                    rate: chaos,
                }
            } else {
                ChaosPlan::None
            },
            ..FleetConfig::default()
        };
        if chaos > 0.0 {
            eprintln!(
                "running {tenants} supervised tenants for {minutes} simulated minutes each \
                 (seed {seed}, chaos {chaos} seed {chaos_seed}) ..."
            );
        } else {
            eprintln!(
                "running {tenants} supervised tenants for {minutes} simulated minutes each \
                 (seed {seed}) ..."
            );
        }
        let outcome = run_fleet(&specs, Path::new(&root), &config, workload_by_name);
        let ledger = outcome.ledger();
        eprintln!(
            "fleet done: {} healthy, {} quarantined, {} retries granted{}",
            outcome.healthy_count(),
            outcome.quarantined_count(),
            ledger.total_retries(),
            ledger
                .mean_throughput()
                .map(|t| format!(", {t:.0} records/sim-s mean per tenant"))
                .unwrap_or_default(),
        );
        merge_fleet(&outcome.tenant_inputs(), &analyzer, workload_by_name)
    };

    // The quarantine summary: one row per tenant, healthy or not.
    let mut table = TextTable::new(vec![
        "tenant".into(),
        "workload".into(),
        "status".into(),
        "records".into(),
        "snapshots".into(),
        "detail".into(),
    ]);
    for t in &merged.tenants {
        table.add_row(vec![
            t.tenant.clone(),
            t.workload.clone(),
            t.status.label().into(),
            t.records.to_string(),
            t.snapshots.to_string(),
            t.status.detail(),
        ]);
    }
    println!("{}", table.render());
    let aggregate = merged.aggregate_counters();
    if !aggregate.is_clean() {
        eprintln!("fleet degradation: {aggregate}");
    }

    write_atomic(&out, &merged.render())?;
    println!(
        "wrote {out} ({} tenant(s) merged, {} quarantined)",
        merged.merged_count(),
        merged.quarantined_count()
    );
    if merged.all_quarantined() {
        Err(fail(
            EXIT_FLEET_ALL_QUARANTINED,
            "every tenant was quarantined; the merged profile has no payload",
        ))
    } else if merged.is_degraded() {
        Err(fail(
            EXIT_FLEET_DEGRADED,
            format!(
                "fleet completed degraded: {} of {} tenant(s) quarantined; \
                 merged profile covers the survivors only",
                merged.quarantined_count(),
                merged.tenants.len()
            ),
        ))
    } else {
        Ok(())
    }
}

fn cmd_run(args: &[String]) -> Result<(), CliError> {
    let name = args.first().ok_or("run needs a workload name")?;
    let workload = workload_by_name(name).ok_or_else(|| format!("unknown workload {name:?}"))?;
    let minutes = parse_u64(args, "--minutes", 15)?;
    let warmup = parse_u64(args, "--warmup", 3)?;
    let seed = parse_u64(args, "--seed", 42)?;
    let collector = flag(args, "--collector").unwrap_or_else(|| "g1".into());
    let setup = match collector.as_str() {
        "g1" => CollectorSetup::G1,
        "ng2c" => CollectorSetup::Ng2cManual,
        "c4" => CollectorSetup::C4,
        "polm2" => {
            let path = flag(args, "--profile").ok_or("--collector polm2 needs --profile <file>")?;
            let text = std::fs::read_to_string(&path).map_err(|e| {
                let code = if e.kind() == std::io::ErrorKind::NotFound {
                    EXIT_PROFILE_MISSING
                } else {
                    EXIT_FAILURE
                };
                fail(code, format!("reading {path}: {e}"))
            })?;
            let profile: AllocationProfile = text
                .parse()
                .map_err(|e| fail(EXIT_CORRUPT, format!("{path}: {e}")))?;
            // A profile whose entries no longer match the program means the
            // application changed since profiling: refuse to launch on it
            // rather than silently pretenure nothing.
            let stale = profile.validate(&workload.program());
            if !stale.is_clean() {
                return Err(fail(
                    EXIT_PROFILE_STALE,
                    format!(
                        "{path}: profile is stale — {} site(s) and {} call(s) no longer \
                         exist in {name}; re-run `polm2 profile {name}`",
                        stale.stale_sites.len(),
                        stale.stale_gen_calls.len()
                    ),
                ));
            }
            CollectorSetup::Polm2(profile)
        }
        other => {
            return Err(CliError::from(format!(
                "unknown collector {other:?} (g1|ng2c|c4|polm2)"
            )))
        }
    };

    let gc_workers = parse_u64(args, "--gc-workers", 1)?;
    let backend = parse_backend(args)?;
    let tlab_kb = parse_tlab_kb(args)?;
    let verify = parse_verify(args)?;
    let heap_mb = parse_heap_mb(args)?;
    let mut config = RunConfig {
        duration: SimDuration::from_secs(minutes * 60),
        warmup: SimDuration::from_secs(warmup * 60),
        seed,
        ..RunConfig::paper()
    };
    config.runtime = config
        .runtime
        .with_gc_workers(gc_workers as usize)
        .with_heap_backend(backend)
        .with_verify_heap(verify)
        .with_heap_limit_mb(heap_mb);
    if let Some(kb) = tlab_kb {
        config.runtime = config.runtime.with_tlab_kb(kb);
    }
    eprintln!(
        "running {name} under {} for {minutes} simulated minutes (warmup {warmup}, seed {seed}) ...",
        setup.label()
    );
    let result = run_workload(workload.as_ref(), &setup, &config).map_err(pipeline_error)?;
    if !result.fault_counters.is_clean() {
        eprintln!("stale profile entries skipped: {}", result.fault_counters);
    }

    let mut table = TextTable::new(vec!["metric".into(), "value".into()]);
    let mut pauses = result.pause_histogram();
    for &p in &STANDARD_PERCENTILES {
        let label = if p >= 100.0 {
            "worst pause".to_string()
        } else {
            format!("p{p} pause")
        };
        table.add_row(vec![
            label,
            pauses
                .percentile(p)
                .map(|d| d.to_string())
                .unwrap_or_else(|| "n/a".into()),
        ]);
    }
    table.add_row(vec!["pauses".into(), pauses.len().to_string()]);
    let mut latency = result.op_latency.clone();
    table.add_row(vec![
        "p99 op latency".into(),
        latency
            .percentile(99.0)
            .map(|d| d.to_string())
            .unwrap_or_else(|| "n/a".into()),
    ]);
    table.add_row(vec![
        "worst op latency".into(),
        latency
            .max()
            .map(|d| d.to_string())
            .unwrap_or_else(|| "n/a".into()),
    ]);
    table.add_row(vec![
        "total stop".into(),
        result.gc_log.total_pause().to_string(),
    ]);
    table.add_row(vec![
        "throughput".into(),
        format!("{:.1} ops/s", result.mean_throughput()),
    ]);
    table.add_row(vec![
        "max memory".into(),
        polm2::metrics::report::bytes(result.max_memory_bytes()),
    ]);
    println!("{}", table.render());
    Ok(())
}

fn cmd_inspect(args: &[String]) -> Result<(), CliError> {
    let path = args.first().ok_or("inspect needs a profile file")?;
    let text = std::fs::read_to_string(path).map_err(|e| {
        let code = if e.kind() == std::io::ErrorKind::NotFound {
            EXIT_PROFILE_MISSING
        } else {
            EXIT_FAILURE
        };
        fail(code, format!("reading {path}: {e}"))
    })?;
    let profile: AllocationProfile = text
        .parse()
        .map_err(|e| fail(EXIT_CORRUPT, format!("{path}: {e}")))?;
    println!(
        "{path}: {} pretenured sites, {} setGeneration call sites, generations {:?}",
        profile.sites().len(),
        profile.gen_calls().len(),
        profile
            .generations_used()
            .iter()
            .map(|g| g.raw())
            .collect::<Vec<_>>(),
    );
    let mut table = TextTable::new(vec![
        "kind".into(),
        "location".into(),
        "generation".into(),
        "mode".into(),
    ]);
    for s in profile.sites() {
        table.add_row(vec![
            "site (@Gen)".into(),
            s.loc.to_string(),
            s.gen.to_string(),
            if s.local {
                "site-local setGeneration"
            } else {
                "generation set by caller"
            }
            .into(),
        ]);
    }
    for c in profile.gen_calls() {
        table.add_row(vec![
            "call wrapper".into(),
            c.at.to_string(),
            c.gen.to_string(),
            "setGeneration / restore pair".into(),
        ]);
    }
    println!("{}", table.render());

    // A `# polm2-faults <name> <value>` footer records how degraded the
    // profiling run that produced this file was.
    let mut counters = FaultCounters::new();
    let mut footer_seen = false;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# polm2-faults ") {
            if let Some((counter, value)) = rest.trim().split_once(' ') {
                if let Ok(value) = value.trim().parse::<u64>() {
                    footer_seen |= counters.set_by_name(counter.trim(), value);
                }
            }
        }
    }
    if footer_seen {
        println!("profiling-run degradation: {counters}");
        let mut table = TextTable::new(vec!["fault counter".into(), "count".into()]);
        for (counter, value) in counters.entries() {
            if value > 0 {
                table.add_row(vec![counter.into(), value.to_string()]);
            }
        }
        println!("{}", table.render());
    }
    Ok(())
}
