//! The paper's motivating scenario (§1), made measurable: a latency-bound
//! service — credit-card fraud detection, targeted advertising — backed by a
//! key-value store must answer within an SLA. Stop-the-world pauses inflate
//! *request latency*, and long tails break the SLA even when throughput
//! looks fine. This example compares end-to-end operation latency (pause
//! time included) under G1 and POLM2 and reports SLA compliance.
//!
//! Run with: `cargo run --release --example sla_latency`

use polm2::metrics::report::TextTable;
use polm2::metrics::SimDuration;
use polm2::workloads::cassandra::CassandraWorkload;
use polm2::workloads::{
    profile_workload, run_workload, CollectorSetup, ProfilePhaseConfig, RunConfig,
};

const SLA: SimDuration = SimDuration::from_millis(50);

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = CassandraWorkload::read_intensive();
    let run_config = RunConfig {
        duration: SimDuration::from_secs(8 * 60),
        warmup: SimDuration::from_secs(60),
        ..RunConfig::paper()
    };
    eprintln!(
        "profiling {} ...",
        polm2::workloads::Workload::name(&workload)
    );
    let profile = profile_workload(
        &workload,
        &ProfilePhaseConfig {
            duration: SimDuration::from_secs(3 * 60),
            ..ProfilePhaseConfig::paper()
        },
    )?
    .outcome
    .profile;

    eprintln!("running under G1 ...");
    let g1 = run_workload(&workload, &CollectorSetup::G1, &run_config)?;
    eprintln!("running under POLM2 ...");
    let polm2 = run_workload(&workload, &CollectorSetup::Polm2(profile), &run_config)?;

    let mut table = TextTable::new(vec![
        "request-latency metric".into(),
        "G1".into(),
        "POLM2".into(),
    ]);
    for (label, p) in [
        ("p50", 50.0),
        ("p99", 99.0),
        ("p99.9", 99.9),
        ("p99.99", 99.99),
    ] {
        table.add_row(vec![
            label.into(),
            g1.op_latency
                .clone()
                .percentile(p)
                .unwrap_or_default()
                .to_string(),
            polm2
                .op_latency
                .clone()
                .percentile(p)
                .unwrap_or_default()
                .to_string(),
        ]);
    }
    table.add_row(vec![
        "worst".into(),
        g1.op_latency.max().unwrap_or_default().to_string(),
        polm2.op_latency.max().unwrap_or_default().to_string(),
    ]);
    let sla_rate = |h: &polm2::metrics::PauseHistogram| {
        let over = h.iter().filter(|&d| d > SLA).count();
        format!("{:.4}%", 100.0 * over as f64 / h.len().max(1) as f64)
    };
    table.add_row(vec![
        format!("requests over the {SLA} SLA"),
        sla_rate(&g1.op_latency),
        sla_rate(&polm2.op_latency),
    ]);
    println!("{}", table.render());
    println!(
        "(every request that lands behind a stop-the-world pause pays for it; \
         POLM2 shrinks the pauses, so the SLA-violating tail shrinks with them)"
    );
    Ok(())
}
