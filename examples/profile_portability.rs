//! Demonstrates paper §3.5: an allocation profile is per *workload*, not per
//! *run* — profile once, then reuse the profile on different request streams
//! (seeds) of the same workload, and even check what happens when a profile
//! from one mix is applied to another.
//!
//! Run with: `cargo run --release --example profile_portability`

use polm2::metrics::SimDuration;
use polm2::workloads::cassandra::CassandraWorkload;
use polm2::workloads::{
    profile_workload, run_workload, CollectorSetup, ProfilePhaseConfig, RunConfig,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let run_config = RunConfig {
        duration: SimDuration::from_secs(5 * 60),
        warmup: SimDuration::from_secs(60),
        ..RunConfig::paper()
    };
    let profile_config = ProfilePhaseConfig {
        duration: SimDuration::from_secs(2 * 60),
        seed: 7,
        ..ProfilePhaseConfig::paper()
    };

    let wi = CassandraWorkload::write_intensive();
    let ri = CassandraWorkload::read_intensive();

    eprintln!("profiling cassandra-wi (seed 7) ...");
    let wi_profile = profile_workload(&wi, &profile_config)?.outcome.profile;
    eprintln!("profiling cassandra-ri (seed 7) ...");
    let ri_profile = profile_workload(&ri, &profile_config)?.outcome.profile;

    // The same profile drives *different* production request streams.
    println!("cassandra-wi, profile from seed 7 applied to unseen seeds:");
    for seed in [42, 1337, 2024] {
        let config = RunConfig { seed, ..run_config };
        let g1 = run_workload(&wi, &CollectorSetup::G1, &config)?;
        let polm2 = run_workload(&wi, &CollectorSetup::Polm2(wi_profile.clone()), &config)?;
        println!(
            "  seed {seed}: worst pause G1 {} -> POLM2 {}",
            g1.pause_histogram().max().unwrap_or_default(),
            polm2.pause_histogram().max().unwrap_or_default(),
        );
    }

    // Cross-workload application: the paper recommends one profile per
    // expected workload; using the matching profile should never lose to a
    // mismatched one.
    println!("\ncassandra-ri under its own profile vs the WI profile:");
    let own = run_workload(&ri, &CollectorSetup::Polm2(ri_profile), &run_config)?;
    let borrowed = run_workload(&ri, &CollectorSetup::Polm2(wi_profile), &run_config)?;
    println!(
        "  matching profile: worst {}, total stop {}",
        own.pause_histogram().max().unwrap_or_default(),
        own.gc_log.total_pause(),
    );
    println!(
        "  WI profile:       worst {}, total stop {}",
        borrowed.pause_histogram().max().unwrap_or_default(),
        borrowed.gc_log.total_pause(),
    );
    Ok(())
}
