//! Compares all four memory-management setups on Cassandra write-intensive
//! at quick scale — the paper's headline comparison in miniature.
//!
//! Run with: `cargo run --release --example cassandra_tuning`

use polm2::metrics::report::TextTable;
use polm2::metrics::{SimDuration, STANDARD_PERCENTILES};
use polm2::workloads::cassandra::CassandraWorkload;
use polm2::workloads::{
    profile_workload, run_workload, CollectorSetup, ProfilePhaseConfig, RunConfig, Workload,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = CassandraWorkload::write_intensive();
    let run_config = RunConfig {
        duration: SimDuration::from_secs(6 * 60),
        warmup: SimDuration::from_secs(60),
        ..RunConfig::paper()
    };
    let profile_config = ProfilePhaseConfig {
        duration: SimDuration::from_secs(2 * 60),
        ..ProfilePhaseConfig::paper()
    };

    eprintln!("profiling {} ...", workload.name());
    let profile = profile_workload(&workload, &profile_config)?
        .outcome
        .profile;

    let setups = [
        CollectorSetup::G1,
        CollectorSetup::Ng2cManual,
        CollectorSetup::Polm2(profile),
        CollectorSetup::C4,
    ];
    let mut results = Vec::new();
    for setup in &setups {
        eprintln!("running {} under {} ...", workload.name(), setup.label());
        results.push(run_workload(&workload, setup, &run_config)?);
    }

    let mut table = TextTable::new(vec![
        "metric".into(),
        "G1".into(),
        "NG2C".into(),
        "POLM2".into(),
        "C4".into(),
    ]);
    for &p in &STANDARD_PERCENTILES {
        let label = if p >= 100.0 {
            "worst pause (ms)".to_string()
        } else {
            format!("p{p} pause (ms)")
        };
        let row: Vec<String> = results
            .iter()
            .map(|r| {
                r.pause_histogram()
                    .percentile(p)
                    .unwrap_or_default()
                    .as_millis()
                    .to_string()
            })
            .collect();
        table.add_row([vec![label], row].concat());
    }
    table.add_row(
        [
            vec!["throughput (ops/s)".to_string()],
            results
                .iter()
                .map(|r| format!("{:.0}", r.mean_throughput()))
                .collect(),
        ]
        .concat(),
    );
    table.add_row(
        [
            vec!["max memory (MiB)".to_string()],
            results
                .iter()
                .map(|r| format!("{:.0}", r.max_memory_bytes() as f64 / (1 << 20) as f64))
                .collect(),
        ]
        .concat(),
    );
    println!("{}", table.render());
    Ok(())
}
