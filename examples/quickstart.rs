//! Quickstart: the complete POLM2 pipeline on a small Cassandra-style
//! workload.
//!
//! Phase 1 (profiling): run the workload with the Recorder agent attached,
//! snapshotting the heap after every GC cycle, then analyze.
//! Phase 2 (production): run again under NG2C with the Instrumenter applying
//! the generated allocation profile, and compare pauses against plain G1.
//!
//! Run with: `cargo run --release --example quickstart`

use polm2::core::{
    AnalyzerConfig, PipelineError, ProductionSetup, ProfilingSession, SnapshotPolicy,
};
use polm2::gc::{GcConfig, Ng2cCollector};
use polm2::metrics::SimTime;
use polm2::runtime::{Jvm, RuntimeConfig};
use polm2::workloads::cassandra::{self, CassandraConfig, CassandraState};
use polm2::workloads::OpMix;

const OPS: usize = 60_000;

fn drive(jvm: &mut Jvm, mut session: Option<&mut ProfilingSession>) -> Result<(), PipelineError> {
    let thread = jvm.spawn_thread();
    for _ in 0..OPS {
        jvm.invoke(thread, "Cassandra", "handleOp")?;
        jvm.advance_mutator(polm2::metrics::SimDuration::from_micros(100));
        if let Some(s) = session.as_deref_mut() {
            s.after_op(jvm)?;
        }
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload_config = CassandraConfig::small(OpMix::WRITE_INTENSIVE);

    // ---------- profiling phase ----------
    println!("== profiling phase ==");
    let mut session = ProfilingSession::new(SnapshotPolicy::default());
    let mut jvm = Jvm::builder(RuntimeConfig::small())
        .hooks(cassandra::hooks())
        .state(Box::new(CassandraState::new(workload_config.clone(), 1)))
        .transformer(session.recorder_agent())
        .build(cassandra::program())?;
    drive(&mut jvm, Some(&mut session))?;
    println!(
        "recorded {} allocations across {} snapshots",
        session.recorded_allocations(),
        session.snapshots().len()
    );
    let outcome = session
        .finish(&mut jvm, &AnalyzerConfig::default())?
        .outcome;
    println!(
        "profile: {} pretenured sites, {} setGeneration call sites, {} conflicts detected",
        outcome.profile.sites().len(),
        outcome.profile.gen_calls().len(),
        outcome.conflicts.len()
    );
    println!("\n{}", outcome.profile);

    // ---------- production: G1 baseline ----------
    let mut g1 = Jvm::builder(RuntimeConfig::small())
        .hooks(cassandra::hooks())
        .state(Box::new(CassandraState::new(workload_config.clone(), 2)))
        .build(cassandra::program())?;
    drive(&mut g1, None)?;

    // ---------- production: NG2C + POLM2 profile ----------
    let setup = ProductionSetup::new(outcome.profile);
    let mut polm2 = Jvm::builder(RuntimeConfig::small())
        .collector(Box::new(Ng2cCollector::new(GcConfig::default())))
        .hooks(cassandra::hooks())
        .state(Box::new(CassandraState::new(workload_config, 2)))
        .transformer(setup.agent())
        .build(cassandra::program())?;
    setup.prepare_generations(&mut polm2);
    drive(&mut polm2, None)?;

    println!("== production phase ==");
    for (label, jvm) in [("G1", &g1), ("POLM2", &polm2)] {
        let mut pauses = jvm.gc_log().pause_histogram(SimTime::ZERO);
        println!(
            "{label:>6}: {} pauses, p50 {}, worst {}, total stop {}",
            pauses.len(),
            pauses.percentile(50.0).unwrap_or_default(),
            pauses.max().unwrap_or_default(),
            pauses.total(),
        );
    }
    let g1_total = g1.gc_log().total_pause();
    let p2_total = polm2.gc_log().total_pause();
    println!(
        "\nPOLM2 reduced total stop-the-world time by {}",
        polm2::metrics::report::percent_reduction(
            p2_total.as_micros() as f64,
            g1_total.as_micros() as f64
        )
    );
    Ok(())
}
