//! Prints the per-allocation-path lifetime distributions the Analyzer
//! derives — the raw material behind every target-generation decision
//! (paper §3.3's buckets, made visible).
//!
//! Run with: `cargo run --release --example lifetime_explorer [-- <workload>]`
//! (default workload: lucene)

use polm2::metrics::report::TextTable;
use polm2::metrics::SimDuration;
use polm2::workloads::registry::workload_by_name;
use polm2::workloads::{profile_workload, ProfilePhaseConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "lucene".to_string());
    let workload = workload_by_name(&name)
        .unwrap_or_else(|| panic!("unknown workload {name}; see registry::paper_workloads"));
    let config = ProfilePhaseConfig {
        duration: SimDuration::from_secs(3 * 60),
        ..ProfilePhaseConfig::paper()
    };
    eprintln!("profiling {name} for {} ...", config.duration);
    let result = profile_workload(workload.as_ref(), &config)?;

    println!(
        "{name}: {} allocations recorded, {} distinct allocation paths, {} snapshots\n",
        result.recorded_allocations,
        result.outcome.lifetimes.traces().len(),
        result.snapshots.len(),
    );

    let mut table = TextTable::new(vec![
        "allocation path (caller -> site)".into(),
        "objects".into(),
        "typical survivals (median)".into(),
        "assigned gen".into(),
        "bucket histogram (survivals:count)".into(),
    ]);
    let mut traces: Vec<_> = result.outcome.lifetimes.traces().to_vec();
    traces.sort_by_key(|t| std::cmp::Reverse(t.objects));
    for t in traces {
        let path: Vec<String> = t.path.iter().map(ToString::to_string).collect();
        let histogram: Vec<String> = t
            .histogram
            .iter()
            .map(|(survivals, count)| format!("{survivals}:{count}"))
            .collect();
        table.add_row(vec![
            path.join(" -> "),
            t.objects.to_string(),
            t.typical_survivals.to_string(),
            t.gen.to_string(),
            histogram.join(" "),
        ]);
    }
    println!("{}", table.render());

    println!("conflicts detected:");
    if result.outcome.conflicts.is_empty() {
        println!("  (none)");
    }
    for c in &result.outcome.conflicts {
        println!(
            "  {} reached through {} call paths with different lifetimes",
            c.loc,
            c.path_count()
        );
    }
    for r in &result.outcome.resolutions {
        println!(
            "    -> {} resolved at call site {} (gen {})",
            r.leaf,
            r.at,
            r.gen.raw()
        );
    }
    Ok(())
}
