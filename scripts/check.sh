#!/usr/bin/env bash
# The full local gate, exactly as CI runs it: formatting, lints, tests.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test"
cargo test --workspace -q

echo "all checks passed"
