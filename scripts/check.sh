#!/usr/bin/env bash
# The full local gate, exactly as CI runs it: formatting, lints, tests.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test"
cargo test --workspace -q

echo "== worker-determinism suites under --verify-heap gc"
# Verification is observation, not participation: the same bit-identity
# suites must pass with a full integrity pass after every collection
# (DESIGN.md §18). The env var flips every session/drive in both suites.
POLM2_VERIFY_HEAP=gc cargo test -q -p polm2-gc --test worker_determinism
POLM2_VERIFY_HEAP=gc cargo test -q -p polm2-core --test gc_worker_determinism

echo "== perfgate smoke (heap arm: sim/real equality + bandwidth floor + copy scaling)"
cargo run --release -p polm2-bench --bin perfgate -- \
  --quick --min-recorder-speedup 1.5 --min-gc-speedup 1.5 --min-heap-gbps 0.01 \
  --min-copy-scaling 1.0 \
  --out /tmp/BENCH_check.json --pipeline-out /tmp/BENCH_pipeline_check.json \
  --recorder-out /tmp/BENCH_recorder_check.json --gc-out /tmp/BENCH_gc_check.json \
  --heap-out /tmp/BENCH_heap_check.json

echo "all checks passed"
