#!/usr/bin/env bash
# Crash-recovery smoke: SIGKILL a journaled profiling run mid-flight, fsck
# the torn journal, resume it, and require the resumed profile's payload to
# match an uninterrupted reference run exactly.
#
# Usage: scripts/crash_recovery_smoke.sh
# Env:   POLM2 (binary, default target/release/polm2), WORKLOAD, MINUTES,
#        KILL_AFTER (seconds before the SIGKILL, default 0.7)
set -euo pipefail
cd "$(dirname "$0")/.."

POLM2=${POLM2:-target/release/polm2}
WORKLOAD=${WORKLOAD:-cassandra-wi}
MINUTES=${MINUTES:-2}
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

echo "== reference run (uninterrupted)"
"$POLM2" profile "$WORKLOAD" --minutes "$MINUTES" \
  --journal "$work/ref-journal" --out "$work/ref.profile"

echo "== crash run (SIGKILL after ${KILL_AFTER:-0.7}s)"
"$POLM2" profile "$WORKLOAD" --minutes "$MINUTES" \
  --journal "$work/journal" --out "$work/crashed.profile" &
pid=$!
sleep "${KILL_AFTER:-0.7}"
if kill -KILL "$pid" 2>/dev/null; then
  echo "killed pid $pid mid-run"
else
  echo "WARNING: run finished before the kill; resume will replay instead"
fi
wait "$pid" || true

echo "== fsck the journal as found"
# A kill between appends can leave the journal clean-but-uncommitted, so a
# zero exit here is legitimate; defects (exit 3) are the common case.
"$POLM2" fsck "$work/journal" || echo "fsck found defects (expected after a kill)"

echo "== resume"
"$POLM2" profile "$WORKLOAD" --minutes "$MINUTES" \
  --journal "$work/journal" --resume --out "$work/resumed.profile"

echo "== journal must be clean after resume"
"$POLM2" fsck "$work/journal"

echo "== payload diff vs reference"
# Comment lines legitimately differ: the resumed run records the crash in
# its fault ledger ("# polm2-faults journal-frames-truncated ...") and thus
# seals with a different checksum footer. The profile payload — every
# non-comment line — must be bit-identical.
diff <(grep -v '^#' "$work/ref.profile") <(grep -v '^#' "$work/resumed.profile")

echo "crash-recovery smoke passed: resumed profile matches the reference"
