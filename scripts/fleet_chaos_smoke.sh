#!/usr/bin/env bash
# Fleet-chaos smoke: run three tenant profiling sessions as independent
# processes journaling into one fleet root, SIGKILL the middle tenant
# mid-run, then require:
#
#   1. fsck flags the killed tenant's journal as defective or uncommitted;
#   2. `polm2 fleet --merge` completes DEGRADED (exit 5) with the killed
#      tenant quarantined in the ledger;
#   3. isolation: the degraded merge's payload is bit-identical to a merge
#      of the two healthy tenants alone — the poisoned tenant changed
#      nothing the survivors produced.
#
# Usage: scripts/fleet_chaos_smoke.sh
# Env:   POLM2 (binary, default target/release/polm2), MINUTES,
#        KILL_AFTER (seconds before the SIGKILL, default 0.7)
set -euo pipefail
cd "$(dirname "$0")/.."

POLM2=${POLM2:-target/release/polm2}
MINUTES=${MINUTES:-2}
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

tenants=(cassandra-wi cassandra-wr cassandra-ri)
root="$work/fleet"

echo "== launch 3 tenant runs (independent processes, one journal each)"
pids=()
for i in 0 1 2; do
  # Staggered --gc-workers: tenant-00 serial, the rest parallel. The merge
  # isolation diff below only holds because profiles are bit-identical at
  # any worker count — this keeps the SIGKILL chaos path pinning that too.
  "$POLM2" profile "${tenants[$i]}" --minutes "$MINUTES" --seed $((7 + i)) \
    --gc-workers $((1 + i)) \
    --journal "$root/tenant-0$i" --out "$work/tenant-0$i.profile" &
  pids+=($!)
done

sleep "${KILL_AFTER:-0.7}"
if kill -KILL "${pids[1]}" 2>/dev/null; then
  echo "killed tenant-01 (pid ${pids[1]}) mid-run"
else
  echo "WARNING: tenant-01 finished before the kill; tearing its journal instead"
fi
wait "${pids[0]}"
wait "${pids[1]}" || true
wait "${pids[2]}"

# If the kill raced the run to completion, tear the journal by hand so the
# degraded path is still exercised.
if "$POLM2" fsck "$root/tenant-01" >/dev/null 2>&1; then
  last=$(ls "$root/tenant-01" | sort | tail -1)
  size=$(stat -c %s "$root/tenant-01/$last" 2>/dev/null || stat -f %z "$root/tenant-01/$last")
  truncate -s $((size - 10)) "$root/tenant-01/$last"
  echo "tore tenant-01's last segment by hand"
fi

echo "== fsck the killed tenant's journal as found"
if "$POLM2" fsck "$root/tenant-01"; then
  # fsck exit 0 means every byte is CRC-valid — a kill between appends can
  # leave that — but the journal must at least be uncommitted.
  echo "(clean-but-uncommitted torn journal)"
fi

echo "== degraded merge must exit 5 and quarantine tenant-01"
set +e
"$POLM2" fleet --merge "$root" --out "$work/merged.profile"
code=$?
set -e
if [ "$code" -ne 5 ]; then
  echo "FAIL: expected exit 5 (completed degraded), got $code"
  exit 1
fi
grep "# polm2-quarantined tenant-01" "$work/merged.profile"

echo "== reference: merge of the two healthy tenants alone (exit 0)"
ref="$work/healthy"
mkdir -p "$ref"
cp -r "$root/tenant-00" "$root/tenant-02" "$ref/"
"$POLM2" fleet --merge "$ref" --out "$work/reference.profile"

echo "== isolation: degraded payload == healthy-only payload"
diff <(grep -v '^#' "$work/merged.profile") <(grep -v '^#' "$work/reference.profile")

echo "fleet-chaos smoke passed: one killed tenant, survivors merged bit-identically"
