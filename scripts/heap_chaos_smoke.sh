#!/usr/bin/env bash
# Heap-chaos smoke: seeded memory corruption and hard-limit backpressure
# against the real CLI binary (DESIGN.md §18). Requires:
#
#   1. detection: a profiling run with corruption planted at rate 1.0 on
#      the real backend exits 7, names the violated invariant on stderr,
#      and writes no profile;
#   2. backpressure: a run whose workload blows a 2 MiB hard limit exits 8
#      after one emergency full collection, leaving a committed fsck-clean
#      journal and a partial profile sealed with the `# polm2-oom` footer
#      and the OOM abort in its fault ledger;
#   3. identity: enabling `--verify-heap gc` changes no payload byte of an
#      uncorrupted run (comment lines — the fault ledger's verify-pass
#      count — legitimately differ; nothing else may);
#   4. fleet isolation: a fleet whose every tenant is corrupted exits 6
#      with each tenant quarantined as `heap-corrupt`.
#
# Usage: scripts/heap_chaos_smoke.sh
# Env:   POLM2 (binary, default target/release/polm2)
set -euo pipefail
cd "$(dirname "$0")/.."

POLM2=${POLM2:-target/release/polm2}
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

echo "== 1. seeded corruption is detected (exit 7, invariant named)"
code=0
"$POLM2" profile cassandra-wi --minutes 1 --chaos-heap 1.0 --chaos-seed 9 \
  --heap-backend real --out "$work/chaos.profile" 2>"$work/chaos.err" || code=$?
if [[ "$code" -ne 7 ]]; then
  echo "FAIL: corruption run exited $code, want 7"; cat "$work/chaos.err"; exit 1
fi
grep -q "integrity violation" "$work/chaos.err" || {
  echo "FAIL: stderr does not name the violation"; cat "$work/chaos.err"; exit 1; }
[[ ! -f "$work/chaos.profile" ]] || { echo "FAIL: corrupt run wrote a profile"; exit 1; }

echo "== 2. hard heap limit unwinds cleanly (exit 8, committed journal)"
code=0
"$POLM2" profile graphchi-cc --minutes 1 --heap-mb 2 \
  --journal "$work/oom-journal" --out "$work/oom.profile" 2>"$work/oom.err" || code=$?
if [[ "$code" -ne 8 ]]; then
  echo "FAIL: OOM run exited $code, want 8"; cat "$work/oom.err"; exit 1
fi
grep -q "# polm2-oom" "$work/oom.profile" || { echo "FAIL: no OOM footer"; exit 1; }
grep -q "# polm2-faults heap-oom-aborts 1" "$work/oom.profile" || {
  echo "FAIL: OOM abort missing from the fault ledger"; exit 1; }
"$POLM2" fsck "$work/oom-journal"

echo "== 3. verification changes no payload byte"
"$POLM2" profile cassandra-wi --minutes 1 --heap-backend real \
  --out "$work/plain.profile"
"$POLM2" profile cassandra-wi --minutes 1 --heap-backend real \
  --verify-heap gc --out "$work/verified.profile"
grep -q "# polm2-faults heap-verify-passes" "$work/verified.profile" || {
  echo "FAIL: verified run ledgered no verify passes"; exit 1; }
diff <(grep -v '^#' "$work/plain.profile") <(grep -v '^#' "$work/verified.profile") || {
  echo "FAIL: --verify-heap gc changed the profile payload"; exit 1; }

echo "== 4. fleet quarantines every corrupted tenant (exit 6)"
code=0
"$POLM2" fleet --tenants 2 --minutes 1 --chaos-heap 1.0 --chaos-seed 9 \
  --heap-backend real --journal-root "$work/fleet-journals" \
  --out "$work/fleet.profile" >"$work/fleet.out" 2>&1 || code=$?
if [[ "$code" -ne 6 ]]; then
  echo "FAIL: all-corrupt fleet exited $code, want 6"; cat "$work/fleet.out"; exit 1
fi
grep -q "heap-corrupt" "$work/fleet.out" || {
  echo "FAIL: quarantine ledger does not say heap-corrupt"; cat "$work/fleet.out"; exit 1; }

echo "heap-chaos smoke passed"
