//! Offline shim for the `criterion` crate.
//!
//! Compiles and runs the workspace's benches with a plain monotonic-clock
//! timer: each `bench_function` runs its routine `sample_size` times and
//! prints the mean ns/iter. No statistics, plotting, or baselines — the
//! committed perf gates use `perfgate`'s own measurement, not this shim.

use std::time::Instant;

/// Opaque value sink preventing the optimizer from deleting benchmarked work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup; the shim treats all variants alike
/// (fresh setup per iteration, setup excluded from timing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            iters: self.sample_size as u64,
            elapsed_ns: 0,
            timed_iters: 0,
        };
        f(&mut bencher);
        bencher.report(name);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
        }
    }
}

/// A named set of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets how many timed iterations each benchmark in the group runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            iters: self.sample_size as u64,
            elapsed_ns: 0,
            timed_iters: 0,
        };
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, name));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Times one benchmark routine.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
    timed_iters: u64,
}

impl Bencher {
    /// Times `f` over the configured iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed_ns += start.elapsed().as_nanos();
        self.timed_iters += self.iters;
    }

    /// Times `routine` over fresh `setup` outputs, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed_ns += start.elapsed().as_nanos();
        }
        self.timed_iters += self.iters;
    }

    fn report(&self, name: &str) {
        if self.timed_iters == 0 {
            println!("bench {name:<60} (no timed iterations)");
        } else {
            let per_iter = self.elapsed_ns / u128::from(self.timed_iters);
            println!("bench {name:<60} {per_iter:>12} ns/iter");
        }
    }
}

/// Declares a benchmark group: `criterion_group! { name = n; config = c;
/// targets = a, b }`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routines() {
        let mut ran = 0u64;
        Criterion::default()
            .sample_size(3)
            .bench_function("shim_smoke", |b| b.iter(|| ran += 1));
        assert_eq!(ran, 3);
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut setups = 0u64;
        let mut c = Criterion::default().sample_size(4);
        let mut group = c.benchmark_group("shim");
        group.sample_size(4).bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    setups
                },
                |v| v * 2,
                BatchSize::SmallInput,
            )
        });
        group.finish();
        assert_eq!(setups, 4);
    }
}
