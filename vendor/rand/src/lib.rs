//! Offline shim for the `rand` crate.
//!
//! Implements exactly the surface this workspace uses: `StdRng` (seeded via
//! [`SeedableRng::seed_from_u64`]) plus [`Rng::gen`] / [`Rng::gen_range`] for
//! unsigned integers, `f64`, and `bool`. The core generator is SplitMix64 —
//! deterministic, fast, and statistically solid for simulation workloads. The
//! stream differs from upstream `rand`'s ChaCha-based `StdRng`, which is fine:
//! every consumer in this workspace seeds explicitly and only relies on
//! "same seed, same stream".

use std::ops::Range;

/// Low-level entropy source: one 64-bit draw at a time.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the type's standard distribution
    /// (`f64` in `[0, 1)`, uniform `bool`, uniform integers).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open, must be non-empty).
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the standard distribution.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Types samplable by [`Rng::gen_range`].
pub trait SampleUniform: Sized {
    /// Draws uniformly from the half-open `range`.
    fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore>(rng: &mut R, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "gen_range on empty range");
                let span = (range.end - range.start) as u64;
                range.start + (rng.next_u64() % span) as $t
            }
        }

        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use crate::StdRng;
}

/// The workspace's standard generator: SplitMix64.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    state: u64,
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // Pre-scramble so that nearby seeds (0, 1, 2…) land on unrelated
        // points of the sequence.
        StdRng {
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
