//! Offline shim for the `proptest` crate.
//!
//! A deterministic property-testing harness covering the surface this
//! workspace uses:
//!
//! - [`proptest!`] blocks with an optional `#![proptest_config(..)]` header
//! - [`strategy::Strategy`] for integer ranges, tuples, `prop_map`, `boxed`,
//!   [`strategy::Just`], weighted [`prop_oneof!`] unions, and string
//!   character-class patterns like `"[A-Z][a-z]{1,8}"`
//! - [`collection::vec`] and [`collection::btree_set`]
//! - [`arbitrary::any`] for primitives
//! - [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`]
//!
//! Differences from upstream: inputs are generated from a fixed per-test seed
//! (derived from the test's module path and name) so runs are reproducible,
//! and there is no shrinking — a failing case fails the test directly with
//! the assertion message and the case index.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-import module test files bring in with
/// `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines deterministic property tests.
///
/// Accepts the upstream grammar used in this workspace: an optional
/// `#![proptest_config(expr)]` header followed by `#[test]` functions whose
/// parameters are `pattern in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands each test fn.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let strategies = ( $($strat,)+ );
                let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    let ( $($pat,)+ ) =
                        $crate::strategy::generate_tuple(&strategies, &mut rng);
                    let run = || $body;
                    $crate::test_runner::run_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                        run,
                    );
                }
            }
        )*
    };
}

/// Weighted union of strategies: `prop_oneof![3 => a, b, 1 => c]`.
/// Entries without a weight default to weight 1.
#[macro_export]
macro_rules! prop_oneof {
    ( $($entries:tt)+ ) => {
        $crate::__prop_oneof_accum!([] $($entries)+)
    };
}

/// Implementation detail of [`prop_oneof!`]: munches one `weight => strategy`
/// or bare `strategy` entry at a time into the accumulator.
#[doc(hidden)]
#[macro_export]
macro_rules! __prop_oneof_accum {
    ( [$(($w:expr, $s:expr))*] ) => {
        $crate::strategy::Union::new(vec![
            $( ($w as u32, $crate::strategy::Strategy::boxed($s)) ),*
        ])
    };
    ( [$($acc:tt)*] $w:literal => $s:expr, $($rest:tt)* ) => {
        $crate::__prop_oneof_accum!([$($acc)* ($w, $s)] $($rest)*)
    };
    ( [$($acc:tt)*] $w:literal => $s:expr ) => {
        $crate::__prop_oneof_accum!([$($acc)* ($w, $s)])
    };
    ( [$($acc:tt)*] $s:expr, $($rest:tt)* ) => {
        $crate::__prop_oneof_accum!([$($acc)* (1, $s)] $($rest)*)
    };
    ( [$($acc:tt)*] $s:expr ) => {
        $crate::__prop_oneof_accum!([$($acc)* (1, $s)])
    };
}

/// Property-test assertion; forwards to [`assert!`] (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Property-test equality assertion; forwards to [`assert_eq!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Property-test inequality assertion; forwards to [`assert_ne!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 10u32..20, y in 0usize..4) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y < 4);
        }

        #[test]
        fn vec_sizes_respected(v in crate::collection::vec(0u64..100, 3..7)) {
            prop_assert!(v.len() >= 3 && v.len() < 7);
            prop_assert!(v.iter().all(|&e| e < 100));
        }

        #[test]
        fn string_patterns_match_shape(s in "[A-Z][a-z]{1,6}") {
            let mut chars = s.chars();
            prop_assert!(chars.next().unwrap().is_ascii_uppercase());
            let rest: Vec<char> = chars.collect();
            prop_assert!((1..=6).contains(&rest.len()));
            prop_assert!(rest.iter().all(|c| c.is_ascii_lowercase()));
        }

        #[test]
        fn oneof_honors_variants(v in prop_oneof![2 => Just(1u8), Just(2u8), 1 => Just(3u8)]) {
            prop_assert!((1..=3).contains(&v));
        }

        #[test]
        fn tuples_and_map_compose(p in (0u32..10, 0u32..10).prop_map(|(a, b)| a + b)) {
            prop_assert!(p < 19);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let strat = crate::collection::vec(0u64..1_000_000, 1..50);
        let mut a = crate::test_runner::TestRng::for_test("det");
        let mut b = crate::test_runner::TestRng::for_test("det");
        for _ in 0..20 {
            assert_eq!(
                crate::strategy::Strategy::generate(&strat, &mut a),
                crate::strategy::Strategy::generate(&strat, &mut b)
            );
        }
    }

    #[test]
    fn btree_set_meets_minimum_size() {
        let strat = crate::collection::btree_set(0u64..1_000, 5..8);
        let mut rng = crate::test_runner::TestRng::for_test("btree");
        for _ in 0..50 {
            let s = crate::strategy::Strategy::generate(&strat, &mut rng);
            assert!(s.len() >= 5 && s.len() < 8, "size {}", s.len());
        }
    }
}
