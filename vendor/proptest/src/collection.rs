//! Collection strategies: `vec` and `btree_set`.

use std::collections::BTreeSet;
use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A half-open size specification for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

impl SizeRange {
    fn sample(self, rng: &mut TestRng) -> usize {
        self.min + rng.pick(self.max_exclusive - self.min)
    }
}

/// A strategy producing `Vec`s of `element` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The result of [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy producing `BTreeSet`s of `element` with a cardinality drawn
/// from `size` (bounded retries push past duplicate draws; the minimum is
/// only unreachable if the element domain itself is too small).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// The result of [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.sample(rng);
        let mut set = BTreeSet::new();
        let mut attempts = 0;
        while set.len() < target && attempts < target * 20 + 64 {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}
