//! Test configuration and the deterministic case generator.

/// Per-block configuration, set via `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The generator feeding strategies: SplitMix64 seeded deterministically
/// per test so failures reproduce across runs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from the test's fully qualified name.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name: stable across runs, platforms, and compilers.
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: hash }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform index in `0..n` (`n` must be non-zero).
    pub fn pick(&mut self, n: usize) -> usize {
        assert!(n > 0, "pick from empty range");
        (self.next_u64() % n as u64) as usize
    }
}

/// Runs one generated case, tagging any panic with the case index so a
/// failure points at which iteration of the deterministic stream tripped.
pub fn run_case<F: FnOnce()>(test: &str, case: u32, f: F) {
    struct CaseGuard<'a> {
        test: &'a str,
        case: u32,
        armed: bool,
    }
    impl Drop for CaseGuard<'_> {
        fn drop(&mut self) {
            if self.armed {
                eprintln!(
                    "proptest shim: {} failed on generated case #{} \
                     (deterministic seed; rerun reproduces it)",
                    self.test, self.case
                );
            }
        }
    }
    let mut guard = CaseGuard {
        test,
        case,
        armed: true,
    };
    f();
    guard.armed = false;
}
