//! The [`Strategy`] trait and the combinators this workspace uses.

use std::ops::Range;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value from `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted choice between strategies; built by `prop_oneof!`.
pub struct Union<T> {
    entries: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds a union from `(weight, strategy)` entries.
    pub fn new(entries: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = entries.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { entries, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut roll = rng.next_u64() % self.total;
        for (weight, strat) in &self.entries {
            let weight = u64::from(*weight);
            if roll < weight {
                return strat.generate(rng);
            }
            roll -= weight;
        }
        unreachable!("weights sum to total")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )+};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

/// String strategies from character-class patterns: a sequence of `[..]`
/// classes (literal characters and `a-z` ranges) each with an optional
/// `{m}` / `{m,n}` repetition, e.g. `"[A-Z][a-z]{1,8}"`. Characters outside
/// a class are taken literally.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_pattern(self, rng)
    }
}

fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        let class: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed character class in pattern {pattern:?}"));
            let body = &chars[i + 1..close];
            i = close + 1;
            expand_class(body, pattern)
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed repetition in pattern {pattern:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (parse_count(lo, pattern), parse_count(hi, pattern)),
                None => {
                    let n = parse_count(&body, pattern);
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "inverted repetition in pattern {pattern:?}");
        let count = min + rng.pick(max - min + 1);
        for _ in 0..count {
            out.push(class[rng.pick(class.len())]);
        }
    }
    out
}

fn expand_class(body: &[char], pattern: &str) -> Vec<char> {
    assert!(
        !body.is_empty(),
        "empty character class in pattern {pattern:?}"
    );
    let mut class = Vec::new();
    let mut i = 0;
    while i < body.len() {
        if i + 2 < body.len() && body[i + 1] == '-' {
            let (lo, hi) = (body[i] as u32, body[i + 2] as u32);
            assert!(lo <= hi, "inverted class range in pattern {pattern:?}");
            class.extend((lo..=hi).filter_map(char::from_u32));
            i += 3;
        } else {
            class.push(body[i]);
            i += 1;
        }
    }
    class
}

fn parse_count(text: &str, pattern: &str) -> usize {
    text.trim()
        .parse()
        .unwrap_or_else(|_| panic!("bad repetition count in pattern {pattern:?}"))
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Generates one value per strategy in a tuple of strategies — the driver
/// behind `proptest!`'s multi-binding test parameters. Unlike the tuple
/// [`Strategy`] impls (arity ≥ 2), this also covers the single-binding case.
pub fn generate_tuple<T: TupleStrategy>(strategies: &T, rng: &mut TestRng) -> T::Values {
    strategies.generate_values(rng)
}

/// Tuples of strategies usable with [`generate_tuple`].
pub trait TupleStrategy {
    /// The tuple of generated values.
    type Values;

    /// Generates one value per element, left to right.
    fn generate_values(&self, rng: &mut TestRng) -> Self::Values;
}

macro_rules! impl_tuple_generate {
    ($(($($s:ident . $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> TupleStrategy for ($($s,)+) {
            type Values = ($($s::Value,)+);

            fn generate_values(&self, rng: &mut TestRng) -> Self::Values {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_generate! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}
