//! `any::<T>()` strategies for primitives.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one value uniformly from the type's domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// The result of [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
